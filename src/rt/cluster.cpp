#include "rt/cluster.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "core/invariants.h"
#include "sweep/bench_json.h"
#include "util/check.h"

namespace saf::rt {

namespace {

std::string node_result_path(const ClusterConfig& cfg, ProcessId id) {
  return cluster_node_result_path(cfg, id);
}

std::string node_trace_path(const ClusterConfig& cfg, ProcessId id) {
  return cfg.out_dir + "/node_" + std::to_string(id) + ".jsonl";
}

std::string node_wal_path(const ClusterConfig& cfg, ProcessId id) {
  return cfg.out_dir + "/node_" + std::to_string(id) + ".wal";
}

NodeConfig node_config(const ClusterConfig& cfg, ProcessId id) {
  NodeConfig nc;
  nc.id = id;
  nc.n = cfg.n;
  nc.t = cfg.t;
  nc.k = cfg.k;
  nc.protocol = cfg.protocol;
  nc.x = cfg.x;
  nc.y = cfg.y;
  nc.base_port = cfg.base_port;
  nc.seed = cfg.seed + static_cast<std::uint64_t>(id);
  nc.run_for_ms = cfg.run_for_ms;
  nc.linger_ms = cfg.linger_ms;
  nc.rounds = cfg.rounds;
  nc.hb = cfg.hb;
  nc.link = cfg.link;
  nc.batched_broadcasts = cfg.batched_broadcasts;
  nc.svc_client_slots = cfg.svc_client_slots;
  nc.svc_jump_threshold = cfg.svc_jump_threshold;
  nc.result_path = node_result_path(cfg, id);
  if (cfg.trace) nc.trace_path = node_trace_path(cfg, id);
  if (cfg.chaos.enabled()) {
    // WAL recovery needs a decided log to restore: kset rounds or the
    // service's frontier. A killed wheels node would restart as a fresh
    // incarnation-0 process (and the schedule never targets it unless
    // explicitly configured).
    if (cfg.chaos.kills > 0 &&
        (cfg.protocol == "kset" || cfg.protocol == "svc")) {
      nc.wal_path = node_wal_path(cfg, id);
    }
    nc.faults = cfg.chaos.faults;
    nc.fault_seed =
        cfg.chaos.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id);
    if (nc.fault_seed == 0) nc.fault_seed = 1;
  }
  return nc;
}

/// Extracts the integer value of `"t":` from a canonical trace line
/// (format_event always puts it first); -1 if absent.
std::int64_t line_time(const std::string& line) {
  const auto pos = line.find("\"t\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + 4);
}

/// Merges per-node jsonl traces into one file ordered by timestamp
/// (ties: node id), each line annotated with its node of origin.
void merge_traces(const ClusterConfig& cfg, ClusterResult* res) {
  struct Line {
    std::int64_t t;
    ProcessId node;
    std::string text;
  };
  std::vector<Line> all;
  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    std::ifstream in(node_trace_path(cfg, id));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (!jsonl_line_complete(line)) {
        // A SIGKILLed node leaves a torn final line (or, after an
        // append-mode restart, a torn middle line). Skip it: the merge
        // must survive exactly the crashes the harness injects.
        std::fprintf(stderr,
                     "merge_traces: node %d: skipping truncated trace "
                     "line (%zu bytes)\n",
                     id, line.size());
        continue;
      }
      // {"t":...}  ->  {"node":<id>,"t":...}
      std::string tagged =
          "{\"node\":" + std::to_string(id) + "," + line.substr(1);
      all.push_back({line_time(line), id, std::move(tagged)});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Line& a, const Line& b) {
    return a.t != b.t ? a.t < b.t : a.node < b.node;
  });
  const std::string path = cfg.out_dir + "/trace_merged.jsonl";
  std::ofstream out(path);
  for (const Line& l : all) out << l.text << "\n";
  res->merged_trace_path = path;
}

void check_kset_contract(const ClusterConfig& cfg, ClusterResult* res) {
  // Synthesize the KSetRunResult fields kset_invariants reads from the
  // per-node outcomes; the checker is then byte-for-byte the one the
  // simulator harness uses. With keep-alive rounds, each round is an
  // independent agreement instance and is checked separately.
  core::KSetRunConfig kcfg;
  kcfg.n = cfg.n;
  kcfg.t = cfg.t;
  kcfg.k = cfg.k;
  std::set<std::int64_t> proposed;
  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    proposed.insert(100 + id);  // run_node's default proposal
  }
  for (int round = 0; round < cfg.rounds; ++round) {
    core::KSetRunResult kres;
    std::set<std::int64_t> decided_values;
    kres.validity = true;
    kres.all_correct_decided = true;
    for (const ClusterNodeOutcome& node : res->nodes) {
      if (!node.launched) continue;
      const std::size_t r = static_cast<std::size_t>(round);
      if (r >= node.rounds.size() || !node.rounds[r].decided) {
        // A SIGKILLed node is a crashed process in the model: its own
        // missing decisions are excused (termination quantifies over
        // correct processes only). Decisions it *did* make still count
        // toward agreement and validity below.
        if (node.kills == 0) kres.all_correct_decided = false;
        continue;
      }
      decided_values.insert(node.rounds[r].decision);
      if (proposed.count(node.rounds[r].decision) == 0) {
        kres.validity = false;
      }
      if (res->max_decision_ms == kNeverTime ||
          node.rounds[r].decision_ms > res->max_decision_ms) {
        res->max_decision_ms = node.rounds[r].decision_ms;
      }
    }
    const int distinct = static_cast<int>(decided_values.size());
    res->distinct_decided = std::max(res->distinct_decided, distinct);
    kres.distinct_decided = distinct;
    kres.agreement_k = distinct <= cfg.k;
    for (const core::InvariantViolation& v :
         core::kset_invariants(kcfg, kres)) {
      res->violations.push_back(
          (cfg.rounds > 1 ? "round " + std::to_string(round) + ": " : "") +
          v.invariant + ": " + v.detail);
    }
  }
}

void check_wheels_contract(const ClusterConfig& cfg, ClusterResult* res) {
  // End-state slice of the Ω_z axioms: all launched nodes share a final
  // trusted set of size in [1, z] containing a launched (correct) id.
  // (The full eventual axioms over histories are checked deterministically
  // in tests/test_rt_fd.cpp; a live run can only witness the end state.)
  const int z = cfg.t + 2 - cfg.x - cfg.y;
  std::set<std::uint64_t> masks;
  for (const ClusterNodeOutcome& node : res->nodes) {
    if (node.launched) masks.insert(node.final_trusted_mask);
  }
  if (masks.size() != 1) {
    res->violations.push_back("wheels/omega: nodes disagree on trusted set");
    return;
  }
  const ProcSet trusted(*masks.begin());
  if (trusted.empty() || trusted.size() > z) {
    res->violations.push_back("wheels/omega: |trusted| outside [1, z]");
  }
  bool has_correct = false;
  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    if (trusted.contains(id)) has_correct = true;
  }
  if (!has_correct) {
    res->violations.push_back("wheels/omega: trusted set has no correct id");
  }
}

}  // namespace

ClusterResult run_cluster(const ClusterConfig& cfg) {
  SAF_CHECK(cfg.n >= 2 && cfg.n <= kMaxProcs);
  SAF_CHECK(cfg.crash >= 0 && cfg.crash <= cfg.t);
  ClusterResult res;
  ::mkdir(cfg.out_dir.c_str(), 0755);  // EEXIST is fine

  res.nodes.assign(static_cast<std::size_t>(cfg.n), {});
  for (ProcessId id = 0; id < cfg.n; ++id) res.nodes[id].id = id;

  std::vector<std::pair<ProcessId, pid_t>> children;
  const auto spawn = [&](ProcessId id) -> bool {
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const NodeConfig nc = node_config(cfg, id);
      if (cfg.node_runner) ::_exit(cfg.node_runner(nc));
      const NodeResult nres = run_node(nc);
      ::_exit(nres.ok ? 0 : 3);
    }
    children.emplace_back(id, pid);
    return true;
  };

  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    // Stale artifacts from a previous run must not be readable as this
    // run's results — including a previous run's recovery record, which
    // would make a fresh node boot as a later incarnation. (Restarts
    // below deliberately do NOT unlink: recovery depends on both.)
    ::unlink(node_result_path(cfg, id).c_str());
    ::unlink(node_wal_path(cfg, id).c_str());
    if (!spawn(id)) {
      res.detail = "fork failed";
      for (auto& [cid, cpid] : children) ::kill(cpid, SIGKILL);
      return res;
    }
    res.nodes[id].launched = true;
  }

  // Chaos schedule: kills fire at wall offsets from this instant (after
  // the launch forks, so "150 ms in" means 150 ms into the actual run).
  const auto launch = std::chrono::steady_clock::now();
  std::vector<ChaosKill> kills = make_kill_schedule(cfg.chaos, cfg.n, cfg.crash);
  struct PendingRestart {
    ProcessId id;
    Time at_ms;
    std::size_t event;  ///< index into res.chaos_events
  };
  std::vector<PendingRestart> restarts;
  std::size_t next_kill = 0;
  const auto now_ms = [&]() -> Time {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - launch)
        .count();
  };

  // Reap with a wall deadline: per-round budget x rounds + slack for
  // fork/teardown, stretched for every scheduled restart cycle.
  const auto deadline =
      launch + std::chrono::milliseconds(
                   cfg.run_for_ms * cfg.rounds + 5000 +
                   static_cast<Time>(kills.size()) *
                       (cfg.chaos.restart_delay_ms + 3000));
  bool all_ok = true;
  while (!children.empty() || !restarts.empty() ||
         next_kill < kills.size()) {
    if (cfg.stop != nullptr && cfg.stop->load()) {
      for (auto& [cid, cpid] : children) {
        ::kill(cpid, SIGKILL);
        ::waitpid(cpid, nullptr, 0);
      }
      children.clear();
      res.interrupted = true;
      res.detail = "interrupted";
      res.ok = false;
      return res;
    }

    const Time now = now_ms();

    // Fire due kills. A victim that already exited is skipped — the
    // schedule is advisory, the protocol run is the ground truth.
    while (next_kill < kills.size() && kills[next_kill].at_ms <= now) {
      const ChaosKill& k = kills[next_kill++];
      const auto it =
          std::find_if(children.begin(), children.end(),
                       [&](const auto& c) { return c.first == k.victim; });
      if (it == children.end()) continue;
      ::kill(it->second, SIGKILL);
      ::waitpid(it->second, nullptr, 0);
      children.erase(it);
      ++res.nodes[k.victim].kills;
      res.chaos_events.push_back({k.victim, now, kNeverTime});
      restarts.push_back(
          {k.victim, now + k.restart_after_ms, res.chaos_events.size() - 1});
    }

    // Fire due restarts: re-fork with result/WAL files intact, so the
    // new incarnation recovers instead of starting fresh.
    for (std::size_t i = 0; i < restarts.size();) {
      if (restarts[i].at_ms <= now) {
        if (spawn(restarts[i].id)) {
          res.chaos_events[restarts[i].event].restarted_at_ms = now_ms();
        } else {
          res.detail = "restart fork failed";
          all_ok = false;
        }
        restarts.erase(restarts.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    for (std::size_t i = 0; i < children.size();) {
      int status = 0;
      const pid_t r = ::waitpid(children[i].second, &status, WNOHANG);
      if (r == children[i].second) {
        res.nodes[children[i].first].exited_ok =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        all_ok = all_ok && res.nodes[children[i].first].exited_ok;
        children.erase(children.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (children.empty() && restarts.empty()) {
      // Remaining scheduled kills can never fire (all victims exited).
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::ostringstream os;
      os << "wall budget exceeded; killed nodes:";
      for (auto& [cid, cpid] : children) {
        os << " " << cid;
        ::kill(cpid, SIGKILL);
        ::waitpid(cpid, nullptr, 0);
      }
      res.detail = os.str();
      all_ok = false;
      children.clear();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  res.ok = all_ok;

  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    ClusterNodeOutcome& node = res.nodes[id];
    try {
      const sweep::FlatJson j =
          sweep::load_json_numbers(node_result_path(cfg, id));
      auto get = [&](const char* key) {
        const auto it = j.find(key);
        return it == j.end() ? 0.0 : it->second;
      };
      node.decided = get("decided") != 0.0;
      node.decision = static_cast<std::int64_t>(get("decision"));
      node.decision_ms = static_cast<Time>(get("decision_ms"));
      node.final_trusted_mask =
          static_cast<std::uint64_t>(get("final_trusted_mask"));
      node.final_suspected_mask =
          static_cast<std::uint64_t>(get("final_suspected_mask"));
      node.incarnation = static_cast<std::uint32_t>(get("incarnation"));
      node.gave_up = get("gave_up") != 0.0;
      // Keep-alive rounds flatten as "rounds.<i>.<field>".
      for (int r = 0; r < cfg.rounds; ++r) {
        const std::string p = "rounds." + std::to_string(r) + ".";
        if (j.find(p + "elapsed_ms") == j.end()) break;  // budget cut short
        RoundResult rr;
        rr.decided = get((p + "decided").c_str()) != 0.0;
        rr.decision = static_cast<std::int64_t>(get((p + "decision").c_str()));
        rr.decision_ms = static_cast<Time>(get((p + "decision_ms").c_str()));
        rr.decision_round =
            static_cast<int>(get((p + "decision_round").c_str()));
        rr.start_ms = static_cast<Time>(get((p + "start_ms").c_str()));
        rr.elapsed_ms = static_cast<Time>(get((p + "elapsed_ms").c_str()));
        node.rounds.push_back(rr);
      }
    } catch (const std::exception& e) {
      res.ok = false;
      if (res.detail.empty()) {
        res.detail = "node " + std::to_string(id) + " result: " + e.what();
      }
    }
  }

  if (cfg.contract_checker) {
    cfg.contract_checker(cfg, &res);
  } else if (cfg.protocol == "kset") {
    check_kset_contract(cfg, &res);
  } else {
    check_wheels_contract(cfg, &res);
  }
  if (cfg.trace) merge_traces(cfg, &res);
  return res;
}

std::string cluster_node_result_path(const ClusterConfig& cfg, ProcessId id) {
  return cfg.out_dir + "/node_" + std::to_string(id) + ".json";
}

std::string cluster_result_json(const ClusterConfig& cfg,
                                const ClusterResult& res) {
  sweep::JsonWriter w;
  w.begin_object();
  w.key("protocol").value(cfg.protocol);
  w.key("n").value(cfg.n);
  w.key("t").value(cfg.t);
  w.key("k").value(cfg.k);
  w.key("crash").value(cfg.crash);
  w.key("rounds").value(cfg.rounds);
  w.key("ok").value(res.ok);
  w.key("contract_ok").value(res.contract_ok());
  w.key("distinct_decided").value(res.distinct_decided);
  w.key("max_decision_ms")
      .value(static_cast<std::int64_t>(res.max_decision_ms));
  w.key("violations").begin_array();
  for (const std::string& v : res.violations) w.value(v);
  w.end_array();
  w.key("nodes").begin_array();
  for (const ClusterNodeOutcome& node : res.nodes) {
    w.begin_object();
    w.key("id").value(static_cast<std::int64_t>(node.id));
    w.key("launched").value(node.launched);
    w.key("exited_ok").value(node.exited_ok);
    w.key("decided").value(node.decided);
    w.key("decision").value(node.decision);
    w.key("decision_ms").value(static_cast<std::int64_t>(node.decision_ms));
    std::uint64_t rounds_decided = 0;
    for (const RoundResult& rr : node.rounds) {
      if (rr.decided) ++rounds_decided;
    }
    w.key("rounds_decided").value(rounds_decided);
    // Wall-clock offsets of each keep-alive round's start within the
    // node's life — lets a latency consumer attribute per-round spikes
    // to kill/restart windows (chaos_events below) without re-reading
    // the node files.
    w.key("round_start_ms").begin_array();
    for (const RoundResult& rr : node.rounds) {
      w.value(static_cast<std::int64_t>(rr.start_ms));
    }
    w.end_array();
    w.key("final_trusted_mask").value(node.final_trusted_mask);
    w.key("final_suspected_mask").value(node.final_suspected_mask);
    w.key("kills").value(node.kills);
    w.key("incarnation").value(static_cast<std::uint64_t>(node.incarnation));
    w.key("gave_up").value(node.gave_up);
    w.end_object();
  }
  w.end_array();
  w.key("interrupted").value(res.interrupted);
  w.key("chaos_events").begin_array();
  for (const ChaosEvent& e : res.chaos_events) {
    w.begin_object();
    w.key("victim").value(static_cast<std::int64_t>(e.victim));
    w.key("killed_at_ms").value(static_cast<std::int64_t>(e.killed_at_ms));
    w.key("restarted_at_ms")
        .value(static_cast<std::int64_t>(e.restarted_at_ms));
    w.end_object();
  }
  w.end_array();
  if (!res.merged_trace_path.empty()) {
    w.key("merged_trace").value(res.merged_trace_path);
  }
  if (!res.detail.empty()) w.key("detail").value(res.detail);
  w.end_object();
  return w.str();
}

}  // namespace saf::rt
