#include "rt/chaos.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>

#include "rt/cluster.h"
#include "sweep/bench_json.h"
#include "util/check.h"
#include "util/rng.h"

namespace saf::rt {

namespace {

double flat_get(const sweep::FlatJson& j, const std::string& key,
                double fallback = 0.0) {
  const auto it = j.find(key);
  return it == j.end() ? fallback : it->second;
}

/// FNV-1a over a string — the checkpoint config fingerprint.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

// ---------------------------------------------------------------------
// Node write-ahead record.

WalRound* NodeWal::find(int round) {
  for (WalRound& r : rounds) {
    if (r.round == round) return &r;
  }
  return nullptr;
}

const WalRound* NodeWal::find(int round) const {
  for (const WalRound& r : rounds) {
    if (r.round == round) return &r;
  }
  return nullptr;
}

WalRound& NodeWal::at(int round) {
  if (WalRound* r = find(round)) return *r;
  rounds.push_back({});
  rounds.back().round = round;
  return rounds.back();
}

std::string node_wal_json(const NodeWal& wal) {
  sweep::JsonWriter w;
  w.begin_object();
  w.key("schema_v").value(1);
  w.key("incarnation").value(static_cast<std::uint64_t>(wal.incarnation));
  w.key("last_started").value(wal.last_started);
  w.key("svc_frontier").value(wal.svc_frontier);
  w.key("rounds").begin_array();
  for (const WalRound& r : wal.rounds) {
    w.begin_object();
    w.key("round").value(r.round);
    w.key("externalized").value(r.externalized);
    w.key("decided").value(r.decided);
    if (r.decided) {
      // Only meaningful when decided; keeps sentinel values (INT64_MIN,
      // kNeverTime) out of the numeric JSON round trip.
      w.key("decision").value(r.decision);
      w.key("decision_ms").value(static_cast<std::int64_t>(r.decision_ms));
      w.key("decision_round").value(r.decision_round);
    }
    w.key("elapsed_ms").value(static_cast<std::int64_t>(r.elapsed_ms));
    w.key("delivered_mask").value(r.delivered_mask);
    w.key("delivered").value(r.delivered);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool load_node_wal(const std::string& path, NodeWal* wal) {
  sweep::FlatJson j;
  try {
    j = sweep::load_json_numbers(path);
  } catch (const std::exception&) {
    return false;  // absent or unreadable: a first boot
  }
  if (j.find("incarnation") == j.end()) return false;
  *wal = NodeWal{};
  wal->incarnation = static_cast<std::uint32_t>(flat_get(j, "incarnation"));
  wal->last_started = static_cast<int>(flat_get(j, "last_started", -1));
  wal->svc_frontier =
      static_cast<std::uint64_t>(flat_get(j, "svc_frontier", 0));
  for (int i = 0;; ++i) {
    const std::string p = "rounds." + std::to_string(i) + ".";
    if (j.find(p + "round") == j.end()) break;
    WalRound r;
    r.round = static_cast<int>(flat_get(j, p + "round"));
    r.externalized = flat_get(j, p + "externalized") != 0.0;
    r.decided = flat_get(j, p + "decided") != 0.0;
    if (r.decided) {
      r.decision = static_cast<std::int64_t>(flat_get(j, p + "decision"));
      r.decision_ms = static_cast<Time>(flat_get(j, p + "decision_ms"));
      r.decision_round =
          static_cast<int>(flat_get(j, p + "decision_round"));
    }
    r.elapsed_ms = static_cast<Time>(flat_get(j, p + "elapsed_ms"));
    r.delivered_mask =
        static_cast<std::uint64_t>(flat_get(j, p + "delivered_mask"));
    r.delivered = static_cast<std::uint64_t>(flat_get(j, p + "delivered"));
    wal->rounds.push_back(r);
  }
  return true;
}

void store_node_wal(const std::string& path, const NodeWal& wal) {
  sweep::write_file_atomic(path, node_wal_json(wal));
}

// ---------------------------------------------------------------------
// Kill schedule.

std::vector<ChaosKill> make_kill_schedule(const ChaosConfig& cfg, int n,
                                          int crash) {
  SAF_CHECK(n >= 2 && crash >= 0 && crash < n);
  std::vector<ChaosKill> kills;
  if (cfg.kills <= 0) return kills;
  util::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 1);
  const Time span = cfg.window_span_ms > 0 ? cfg.window_span_ms : 1;
  const Time slice = span / cfg.kills > 0 ? span / cfg.kills : 1;
  for (int i = 0; i < cfg.kills; ++i) {
    ChaosKill k;
    // Stratified offsets: one kill per slice of the window, jittered
    // inside it, so repeated kills spread across the run instead of
    // clustering (and never land at launch — window_start_ms > 0).
    k.at_ms = cfg.window_start_ms + static_cast<Time>(i) * slice +
              rng.uniform(0, slice - 1);
    k.victim = static_cast<ProcessId>(rng.uniform(crash, n - 1));
    k.restart_after_ms = cfg.restart_delay_ms;
    kills.push_back(k);
  }
  std::sort(kills.begin(), kills.end(),
            [](const ChaosKill& a, const ChaosKill& b) {
              return a.at_ms != b.at_ms ? a.at_ms < b.at_ms
                                        : a.victim < b.victim;
            });
  return kills;
}

// ---------------------------------------------------------------------
// Round verdicts.

std::vector<RtRoundVerdict> classify_rt_rounds(const ClusterConfig& cfg,
                                               const ClusterResult& res) {
  const bool chaos_active = cfg.chaos.enabled();
  std::vector<RtRoundVerdict> out;
  out.reserve(static_cast<std::size_t>(cfg.rounds));

  if (!res.ok) {
    // Cluster-level failure: nothing finer than whole-run is knowable.
    const bool timed_out = res.detail.rfind("wall budget", 0) == 0;
    for (int r = 0; r < cfg.rounds; ++r) {
      out.push_back({r,
                     timed_out ? fault::Verdict::kTimedOut
                               : fault::Verdict::kWorkerError,
                     res.detail});
    }
    return out;
  }

  if (cfg.protocol != "kset") {
    // wheels has no per-round decisions; classify the run's end-state
    // contract as one verdict replicated per round.
    const bool broke = !res.violations.empty();
    fault::Verdict v;
    if (broke) {
      v = chaos_active ? fault::Verdict::kViolationExplained
                       : fault::Verdict::kViolationInModel;
    } else {
      v = chaos_active ? fault::Verdict::kSafeOutOfModel
                       : fault::Verdict::kSafeInModel;
    }
    for (int r = 0; r < cfg.rounds; ++r) {
      out.push_back({r, v, broke ? res.violations.front() : ""});
    }
    return out;
  }

  std::set<std::int64_t> proposed;
  for (ProcessId id = cfg.crash; id < cfg.n; ++id) {
    proposed.insert(100 + id);  // run_node's default proposal
  }

  for (int round = 0; round < cfg.rounds; ++round) {
    RtRoundVerdict rv;
    rv.round = round;
    std::set<std::int64_t> decided_values;
    bool validity = true;
    bool termination = true;
    bool kill_excused = false;
    for (const ClusterNodeOutcome& node : res.nodes) {
      if (!node.launched) continue;
      const std::size_t r = static_cast<std::size_t>(round);
      if (r >= node.rounds.size() || !node.rounds[r].decided) {
        // A killed node's missing decisions are the crash the model
        // already prices in; everyone else's are a termination miss.
        if (node.kills > 0) {
          kill_excused = true;
        } else {
          termination = false;
        }
        continue;
      }
      decided_values.insert(node.rounds[r].decision);
      if (proposed.count(node.rounds[r].decision) == 0) validity = false;
    }
    const bool agreement =
        static_cast<int>(decided_values.size()) <= cfg.k;
    if (!agreement || !validity) {
      rv.detail = !agreement
                      ? "agreement: " +
                            std::to_string(decided_values.size()) +
                            " distinct decisions > k"
                      : "validity: decided a never-proposed value";
      rv.verdict = chaos_active ? fault::Verdict::kViolationExplained
                                : fault::Verdict::kViolationInModel;
    } else if (!termination) {
      if (chaos_active) {
        rv.detail = "termination: missed under chaos (kills/link faults)";
        rv.verdict = fault::Verdict::kViolationExplained;
      } else {
        rv.detail = "termination: round budget exhausted";
        rv.verdict = fault::Verdict::kTimedOut;
      }
    } else if (chaos_active || kill_excused) {
      rv.verdict = fault::Verdict::kSafeOutOfModel;
    } else {
      rv.verdict = fault::Verdict::kSafeInModel;
    }
    out.push_back(std::move(rv));
  }
  return out;
}

// ---------------------------------------------------------------------
// Live sweep driver.

namespace {

struct GridPoint {
  std::string faults;
  int kills = 0;
  HeartbeatParams hb;
};

std::vector<GridPoint> build_grid(const RtSweepOptions& opts) {
  std::vector<GridPoint> grid;
  for (const std::string& f : opts.fault_profiles) {
    for (const int kills : opts.kills) {
      for (const HeartbeatParams& hb : opts.hb_grid) {
        grid.push_back({f, kills, hb});
      }
    }
  }
  return grid;
}

std::uint64_t sweep_fingerprint(const RtSweepOptions& opts) {
  std::string s = "saf-rt-sweep-v1|" + opts.protocol + "|" +
                  std::to_string(opts.n) + "|" + std::to_string(opts.t) +
                  "|" + std::to_string(opts.k) + "|" +
                  std::to_string(opts.runs) + "|" +
                  std::to_string(opts.rounds_per_run) + "|" +
                  std::to_string(opts.run_for_ms) + "|" +
                  std::to_string(opts.seed) + "|";
  for (const std::string& f : opts.fault_profiles) s += f + ",";
  s += "|";
  for (const int k : opts.kills) s += std::to_string(k) + ",";
  s += "|";
  for (const HeartbeatParams& hb : opts.hb_grid) {
    s += std::to_string(hb.hb_period) + "/" +
         std::to_string(hb.timeout_initial) + ",";
  }
  return fnv1a(s);
}

std::string checkpoint_json(const RtSweepOptions& opts,
                            const std::vector<RtSweepRunRecord>& records) {
  sweep::JsonWriter w;
  w.begin_object();
  w.key("schema_v").value(1);
  w.key("fingerprint").value(sweep_fingerprint(opts));
  w.key("records").begin_array();
  for (const RtSweepRunRecord& r : records) {
    w.begin_object();
    w.key("run").value(r.run);
    w.key("done").value(r.done);
    w.key("rounds").value(r.rounds);
    w.key("wall_ms").value(static_cast<std::int64_t>(r.wall_ms));
    w.key("rounds_per_sec").value(r.rounds_per_sec);
    w.key("verdicts").begin_array();
    for (int i = 0; i < fault::kVerdictCount; ++i) {
      w.value(r.verdict_counts[i]);
    }
    w.end_array();
    w.key("decisions").begin_array();
    for (const double d : r.decision_ms) w.value(d);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Restores completed records from a checkpoint; throws
/// std::invalid_argument on a fingerprint/shape mismatch.
void load_checkpoint(const RtSweepOptions& opts,
                     std::vector<RtSweepRunRecord>* records) {
  sweep::FlatJson j;
  try {
    j = sweep::load_json_numbers(opts.checkpoint_path);
  } catch (const std::exception& e) {
    throw std::invalid_argument("rt_sweep checkpoint unreadable: " +
                                std::string(e.what()));
  }
  const auto fp = j.find("fingerprint");
  if (fp == j.end() ||
      static_cast<std::uint64_t>(fp->second) !=
          static_cast<std::uint64_t>(
              static_cast<double>(sweep_fingerprint(opts)))) {
    throw std::invalid_argument(
        "rt_sweep checkpoint does not match the sweep configuration "
        "(different grid/seed/budget?): " +
        opts.checkpoint_path);
  }
  for (std::size_t i = 0; i < records->size(); ++i) {
    const std::string p = "records." + std::to_string(i) + ".";
    if (flat_get(j, p + "done") == 0.0) continue;
    RtSweepRunRecord& r = (*records)[i];
    r.done = true;
    r.rounds = static_cast<int>(flat_get(j, p + "rounds"));
    r.wall_ms = static_cast<Time>(flat_get(j, p + "wall_ms"));
    r.rounds_per_sec = flat_get(j, p + "rounds_per_sec");
    for (int v = 0; v < fault::kVerdictCount; ++v) {
      r.verdict_counts[v] = static_cast<int>(
          flat_get(j, p + "verdicts." + std::to_string(v)));
    }
    r.decision_ms.clear();
    for (int d = 0;; ++d) {
      const auto it = j.find(p + "decisions." + std::to_string(d));
      if (it == j.end()) break;
      r.decision_ms.push_back(it->second);
    }
  }
}

}  // namespace

RtSweepReport rt_sweep(const RtSweepOptions& opts) {
  SAF_CHECK(opts.runs >= 1);
  SAF_CHECK(opts.rounds_per_run >= 1);
  SAF_CHECK(!opts.fault_profiles.empty() && !opts.kills.empty() &&
            !opts.hb_grid.empty());
  const std::vector<GridPoint> grid = build_grid(opts);

  RtSweepReport rep;
  rep.records.resize(static_cast<std::size_t>(opts.runs));
  for (int i = 0; i < opts.runs; ++i) {
    RtSweepRunRecord& r = rep.records[static_cast<std::size_t>(i)];
    const GridPoint& pt = grid[static_cast<std::size_t>(i) % grid.size()];
    r.run = i;
    r.faults = pt.faults;
    r.kills = pt.kills;
    r.hb_period = pt.hb.hb_period;
  }

  const bool checkpointing = !opts.checkpoint_path.empty();
  if (checkpointing && opts.resume) {
    load_checkpoint(opts, &rep.records);
  }

  int since_checkpoint = 0;
  const auto maybe_checkpoint = [&](bool force) {
    if (!checkpointing) return;
    if (!force && ++since_checkpoint < opts.checkpoint_every) return;
    since_checkpoint = 0;
    sweep::write_file_atomic(opts.checkpoint_path,
                             checkpoint_json(opts, rep.records));
  };

  for (int i = 0; i < opts.runs; ++i) {
    RtSweepRunRecord& rec = rep.records[static_cast<std::size_t>(i)];
    if (rec.done) continue;
    if (opts.stop != nullptr && opts.stop->load()) {
      rep.interrupted = true;
      break;
    }
    const GridPoint& pt = grid[static_cast<std::size_t>(i) % grid.size()];

    ClusterConfig ccfg;
    ccfg.protocol = opts.protocol;
    ccfg.n = opts.n;
    ccfg.t = opts.t;
    ccfg.k = opts.k;
    ccfg.crash = 0;  // chaos crashes mid-run instead of at launch
    ccfg.base_port = opts.base_port;
    ccfg.seed = opts.seed + static_cast<std::uint64_t>(i);
    ccfg.run_for_ms = opts.run_for_ms;
    ccfg.linger_ms = opts.linger_ms;
    ccfg.rounds = opts.rounds_per_run;
    ccfg.hb = pt.hb;
    ccfg.out_dir = opts.out_dir;
    ccfg.trace = opts.trace;
    ccfg.stop = opts.stop;
    ccfg.chaos.kills = pt.kills;
    ccfg.chaos.faults = pt.faults;
    ccfg.chaos.restart_delay_ms = opts.restart_delay_ms;
    ccfg.chaos.window_start_ms = opts.kill_window_start_ms;
    ccfg.chaos.window_span_ms = opts.kill_window_span_ms;
    ccfg.chaos.seed = opts.seed * 0x100000001b3ULL +
                      static_cast<std::uint64_t>(i);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RtRoundVerdict> verdicts;
    try {
      const ClusterResult res = run_cluster(ccfg);
      if (res.interrupted) {
        rep.interrupted = true;
        break;
      }
      verdicts = classify_rt_rounds(ccfg, res);
      for (int round = 0; round < ccfg.rounds; ++round) {
        Time slowest = kNeverTime;
        for (const ClusterNodeOutcome& node : res.nodes) {
          const std::size_t r = static_cast<std::size_t>(round);
          if (!node.launched || r >= node.rounds.size() ||
              !node.rounds[r].decided) {
            continue;
          }
          slowest = std::max(slowest, node.rounds[r].decision_ms);
        }
        if (slowest != kNeverTime) {
          rec.decision_ms.push_back(static_cast<double>(slowest));
        }
      }
      if (!res.merged_trace_path.empty()) {
        rep.merged_trace_path = res.merged_trace_path;
      }
    } catch (const std::exception&) {
      verdicts.assign(static_cast<std::size_t>(ccfg.rounds),
                      {0, fault::Verdict::kWorkerError, "run_cluster threw"});
    }
    const auto t1 = std::chrono::steady_clock::now();
    rec.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      t1 - t0)
                      .count();
    rec.rounds = static_cast<int>(verdicts.size());
    for (const RtRoundVerdict& v : verdicts) {
      ++rec.verdict_counts[static_cast<int>(v.verdict)];
    }
    rec.rounds_per_sec =
        rec.wall_ms > 0
            ? static_cast<double>(rec.rounds) * 1000.0 /
                  static_cast<double>(rec.wall_ms)
            : 0.0;
    rec.done = true;
    maybe_checkpoint(false);
  }

  // Aggregates over completed runs.
  std::vector<double> all_decisions;
  Time total_wall = 0;
  int total_rounds = 0;
  for (const RtSweepRunRecord& r : rep.records) {
    if (!r.done) continue;
    ++rep.completed;
    for (int v = 0; v < fault::kVerdictCount; ++v) {
      rep.verdict_histogram[v] += r.verdict_counts[v];
    }
    total_wall += r.wall_ms;
    total_rounds += r.rounds;
    all_decisions.insert(all_decisions.end(), r.decision_ms.begin(),
                         r.decision_ms.end());
  }
  rep.rounds_per_sec =
      total_wall > 0 ? static_cast<double>(total_rounds) * 1000.0 /
                           static_cast<double>(total_wall)
                     : 0.0;
  rep.decision_p50_ms = percentile(all_decisions, 0.50);
  rep.decision_p99_ms = percentile(all_decisions, 0.99);

  maybe_checkpoint(true);
  return rep;
}

std::string rt_sweep_report_json(const RtSweepOptions& opts,
                                 const RtSweepReport& rep) {
  sweep::JsonWriter w;
  w.begin_object();
  w.key("schema").value("saf-rt-sweep-v1");
  w.key("protocol").value(opts.protocol);
  w.key("n").value(opts.n);
  w.key("runs").value(opts.runs);
  w.key("rounds_per_run").value(opts.rounds_per_run);
  w.key("completed").value(rep.completed);
  w.key("interrupted").value(rep.interrupted);
  w.key("failed").value(rep.failed());
  w.key("rounds_per_sec").value(rep.rounds_per_sec);
  w.key("decision_p50_ms").value(rep.decision_p50_ms);
  w.key("decision_p99_ms").value(rep.decision_p99_ms);
  w.key("verdicts").begin_object();
  for (int v = 0; v < fault::kVerdictCount; ++v) {
    w.key(fault::verdict_name(static_cast<fault::Verdict>(v)))
        .value(rep.verdict_histogram[v]);
  }
  w.end_object();
  if (!rep.merged_trace_path.empty()) {
    w.key("merged_trace").value(rep.merged_trace_path);
  }
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------------
// Shared helpers.

bool jsonl_line_complete(const std::string& line) {
  return line.size() >= 2 && line.front() == '{' && line.back() == '}';
}

}  // namespace saf::rt
