// rt_cluster: launch a loopback cluster of live nodes and check the
// protocol contract.
//
//   rt_cluster --protocol kset --n 5 --k 2 --crash 1
//
// forks n-1 rt nodes (the lowest `crash` ids are never launched —
// initial crashes), waits for them on a wall budget, and verifies
// k-set agreement / termination with the same core::kset_invariants
// checker the simulator harnesses use. Prints a JSON summary. Exit
// status: 0 contract held, 1 a node failed or an invariant was
// violated, 2 usage error.
#include <signal.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "fault/fault_spec.h"
#include "rt/cluster.h"
#include "svc/server.h"

namespace {

using saf::rt::ClusterConfig;
using saf::rt::ClusterResult;

/// SIGTERM/SIGINT: cooperative stop. run_cluster's reap loop sees the
/// flag, SIGKILLs and reaps every child, and returns `interrupted`;
/// main exits 130 — no orphaned node processes, ever.
std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void print_usage(std::ostream& os) {
  os << "usage: rt_cluster [--protocol kset|wheels|svc] [--n N] [--t T]\n"
        "                  [--k K] [--x X] [--y Y] [--crash C]\n"
        "                  [--base-port P] [--seed S] [--run-for-ms MS]\n"
        "                  [--linger-ms MS] [--hb-period MS]\n"
        "                  [--hb-timeout MS] [--out-dir DIR] [--trace]\n"
        "                  [--repeat R] [--keep-alive]\n"
        "                  [--batched-broadcasts] [--chaos-kills K]\n"
        "                  [--chaos-restart-ms MS] [--chaos-window-ms MS]\n"
        "                  [--chaos-seed S] [--faults SPEC]\n"
        "                  [--svc-client-slots N] [--svc-jump-threshold N]\n"
        "                  [--help]\n"
        "\n"
        "--protocol svc runs the long-lived decision service (svc/):\n"
        "each node pipelines k-set instances for the whole wall budget,\n"
        "serves client submissions on link ids n..n+slots-1 (see\n"
        "svc_client), and catches up over decided-prefix snapshots; the\n"
        "contract check is per-instance agreement/validity/prefix.\n"
        "\n"
        "--repeat R re-runs the whole cluster R times (fork/exec per run);\n"
        "with --keep-alive the R repetitions run as keep-alive rounds\n"
        "inside one set of node processes (one fork per node total).\n"
        "\n"
        "--chaos-kills K schedules K SIGKILL/restart cycles at seeded\n"
        "mid-round wall offsets (victims recover through their WAL);\n"
        "--faults installs a fault::LinkFaultModel profile on every\n"
        "node's live UDP link. SIGTERM/SIGINT reaps all children and\n"
        "exits 130.\n";
}

int usage(const std::string& err = "") {
  if (!err.empty()) std::cerr << "rt_cluster: " << err << "\n";
  print_usage(std::cerr);
  return 2;
}

template <typename Int>
bool parse_int(const char* flag, const char* v, long long lo, Int* out) {
  errno = 0;
  char* end = nullptr;
  const long long raw = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || raw < lo) {
    std::cerr << "rt_cluster: " << flag << " expects an integer >= " << lo
              << "\n";
    return false;
  }
  *out = static_cast<Int>(raw);
  return true;
}

bool parse_args(int argc, char** argv, ClusterConfig* cfg, int* repeat,
                bool* keep_alive) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rt_cluster: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--protocol") {
      if ((v = value("--protocol")) == nullptr) return false;
      cfg->protocol = v;
    } else if (arg == "--n") {
      if ((v = value("--n")) == nullptr || !parse_int("--n", v, 2, &cfg->n))
        return false;
    } else if (arg == "--t") {
      if ((v = value("--t")) == nullptr || !parse_int("--t", v, 1, &cfg->t))
        return false;
    } else if (arg == "--k") {
      if ((v = value("--k")) == nullptr || !parse_int("--k", v, 1, &cfg->k))
        return false;
    } else if (arg == "--x") {
      if ((v = value("--x")) == nullptr || !parse_int("--x", v, 1, &cfg->x))
        return false;
    } else if (arg == "--y") {
      if ((v = value("--y")) == nullptr || !parse_int("--y", v, 0, &cfg->y))
        return false;
    } else if (arg == "--crash") {
      if ((v = value("--crash")) == nullptr ||
          !parse_int("--crash", v, 0, &cfg->crash)) {
        return false;
      }
    } else if (arg == "--base-port") {
      if ((v = value("--base-port")) == nullptr ||
          !parse_int("--base-port", v, 1024, &cfg->base_port)) {
        return false;
      }
    } else if (arg == "--seed") {
      if ((v = value("--seed")) == nullptr ||
          !parse_int("--seed", v, 0, &cfg->seed)) {
        return false;
      }
    } else if (arg == "--run-for-ms") {
      if ((v = value("--run-for-ms")) == nullptr ||
          !parse_int("--run-for-ms", v, 1, &cfg->run_for_ms)) {
        return false;
      }
    } else if (arg == "--linger-ms") {
      if ((v = value("--linger-ms")) == nullptr ||
          !parse_int("--linger-ms", v, 0, &cfg->linger_ms)) {
        return false;
      }
    } else if (arg == "--hb-period") {
      if ((v = value("--hb-period")) == nullptr ||
          !parse_int("--hb-period", v, 1, &cfg->hb.hb_period)) {
        return false;
      }
    } else if (arg == "--hb-timeout") {
      if ((v = value("--hb-timeout")) == nullptr ||
          !parse_int("--hb-timeout", v, 1, &cfg->hb.timeout_initial)) {
        return false;
      }
    } else if (arg == "--out-dir") {
      if ((v = value("--out-dir")) == nullptr) return false;
      cfg->out_dir = v;
    } else if (arg == "--trace") {
      cfg->trace = true;
    } else if (arg == "--repeat") {
      if ((v = value("--repeat")) == nullptr ||
          !parse_int("--repeat", v, 1, repeat)) {
        return false;
      }
    } else if (arg == "--keep-alive") {
      *keep_alive = true;
    } else if (arg == "--batched-broadcasts") {
      cfg->batched_broadcasts = true;
    } else if (arg == "--svc-client-slots") {
      if ((v = value("--svc-client-slots")) == nullptr ||
          !parse_int("--svc-client-slots", v, 0, &cfg->svc_client_slots)) {
        return false;
      }
    } else if (arg == "--svc-jump-threshold") {
      if ((v = value("--svc-jump-threshold")) == nullptr ||
          !parse_int("--svc-jump-threshold", v, 1,
                     &cfg->svc_jump_threshold)) {
        return false;
      }
    } else if (arg == "--chaos-kills") {
      if ((v = value("--chaos-kills")) == nullptr ||
          !parse_int("--chaos-kills", v, 0, &cfg->chaos.kills)) {
        return false;
      }
    } else if (arg == "--chaos-restart-ms") {
      if ((v = value("--chaos-restart-ms")) == nullptr ||
          !parse_int("--chaos-restart-ms", v, 0,
                     &cfg->chaos.restart_delay_ms)) {
        return false;
      }
    } else if (arg == "--chaos-window-ms") {
      if ((v = value("--chaos-window-ms")) == nullptr ||
          !parse_int("--chaos-window-ms", v, 1, &cfg->chaos.window_span_ms)) {
        return false;
      }
    } else if (arg == "--chaos-seed") {
      if ((v = value("--chaos-seed")) == nullptr ||
          !parse_int("--chaos-seed", v, 0, &cfg->chaos.seed)) {
        return false;
      }
    } else if (arg == "--faults") {
      if ((v = value("--faults")) == nullptr) return false;
      cfg->chaos.faults = v;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "rt_cluster: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ClusterConfig cfg;
  int repeat = 1;
  bool keep_alive = false;
  if (!parse_args(argc, argv, &cfg, &repeat, &keep_alive)) return usage();
  if (cfg.t >= cfg.n) return usage("--t must be < --n");
  if (cfg.crash > cfg.t) return usage("--crash must be <= --t");
  if (cfg.protocol != "kset" && cfg.protocol != "wheels" &&
      cfg.protocol != "svc") {
    return usage("--protocol must be kset, wheels or svc");
  }
  if (cfg.protocol == "svc") {
    // The launcher's fork/kill/restart/reap machinery is reused as-is;
    // only the per-child loop and the contract check are swapped.
    cfg.node_runner = saf::svc::run_server;
    cfg.contract_checker = saf::svc::check_service_contract;
  }
  if (keep_alive) {
    // The repetitions become rounds within one long-lived node process
    // per id; one cluster launch covers them all.
    cfg.rounds = repeat;
    repeat = 1;
  }
  if (!cfg.chaos.faults.empty()) {
    try {
      (void)saf::fault::parse_fault_spec(cfg.chaos.faults);
    } catch (const std::exception& e) {
      return usage(std::string("--faults: ") + e.what());
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  cfg.stop = &g_stop;

  bool failed = false;
  for (int r = 0; r < repeat; ++r) {
    const ClusterResult res = saf::rt::run_cluster(cfg);
    if (res.interrupted) {
      std::cerr << "rt_cluster: interrupted; children reaped\n";
      return 130;
    }
    std::cout << saf::rt::cluster_result_json(cfg, res) << "\n";
    if (!res.contract_ok()) {
      std::cerr << "rt_cluster: run " << (r + 1) << "/" << repeat
                << " FAILED";
      if (!res.detail.empty()) std::cerr << " (" << res.detail << ")";
      for (const std::string& viol : res.violations) {
        std::cerr << "\n  violation: " << viol;
      }
      std::cerr << "\n";
      failed = true;
    } else if (repeat > 1) {
      std::cerr << "rt_cluster: run " << (r + 1) << "/" << repeat << " ok\n";
    }
  }
  return failed ? 1 : 0;
}
