// One live protocol node: a wall-clock process driving the unmodified
// core/ protocols over UDP.
//
// The trick that keeps core/ protocol sources untouched is an *embedded
// simulator*: each OS process hosts a Simulator with the full process
// table, but only its own id is a real protocol process — the other
// n-1 slots are inert RemoteStubs. Three seams splice the engine onto
// the real world:
//
//   * outbound — a sim::RemoteTransportHook on the embedded Network
//     intercepts every send addressed to a non-local id, flattens the
//     message through rt/codec and hands it to the UdpLink (exactly
//     once, end to end: the link retransmits and dedups);
//   * inbound  — datagrams decode into the simulator's arena and enter
//     through Simulator::inject_deliver, so handlers, reliable-
//     broadcast interception and coroutine wakeups behave exactly as
//     in a simulated run;
//   * time     — the main loop calls Simulator::pump(now_ms) so virtual
//     time tracks the wall clock (1 virtual unit == 1 ms); ticks,
//     sleeps and wait predicates fire at their real-time instants.
//
// The failure detectors the protocols consume are the heartbeat
// implementations (rt/heartbeat_fd.h) — the detector choice lives
// here, in the harness, not in the protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/heartbeat_fd.h"
#include "rt/udp_link.h"
#include "util/types.h"

namespace saf::rt {

struct NodeConfig {
  ProcessId id = 0;
  int n = 5;
  int t = 2;
  int k = 2;  ///< agreement bound; the Ω oracle is built with z = k
  /// "kset" (Fig 3 over heartbeat-Ω_z) or "wheels" (the two-wheels
  /// construction over heartbeat-◇S_x + heartbeat-◇φ_y).
  std::string protocol = "kset";
  int x = 2;  ///< wheels: ◇S_x scope
  int y = 1;  ///< wheels: ◇φ_y class index
  std::uint16_t base_port = 47400;
  /// Value this node proposes (kset); kNoValue means "default 100+id".
  std::int64_t proposal = INT64_MIN;
  std::uint64_t seed = 1;
  Time run_for_ms = 15'000;  ///< wall budget; also the sim horizon
  /// After deciding, keep serving acks / RB forwards this long so
  /// slower peers can still finish (a decided node that exits at once
  /// would look crashed to everyone else).
  Time linger_ms = 750;
  Time tick_period = 5;
  /// Keep-alive rounds: consecutive protocol instances run in this OS
  /// process over one long-lived link + heartbeat monitor. Each round
  /// gets a fresh embedded simulator; the link's epoch tag keeps stale
  /// cross-round traffic out of the new instance. The linger wait
  /// applies only after the final round — between rounds the persistent
  /// link keeps serving acks and heartbeats, so a node advances as soon
  /// as it decided and its outgoing traffic to unsuspected peers is
  /// fully acknowledged.
  int rounds = 1;
  HeartbeatParams hb;
  UdpLinkParams link;
  std::string trace_path;    ///< jsonl trace file; empty = no trace
  std::string result_path;   ///< result JSON file; empty = stdout
  std::string metrics_path;  ///< rt.* metrics JSON file; empty = none
  /// Crash-recovery write-ahead record (rt/chaos.h), enabling
  /// kill/restart survival: on start the node loads it, bumps its
  /// incarnation, restores decided rounds, skips rounds whose messages
  /// already escaped, and rejoins the keep-alive stream via catch-up.
  /// Empty = no recovery (a restart would be a fresh incarnation-0
  /// node). kset only.
  std::string wal_path;
  /// fault::LinkFaultModel spec (profile name or inline grammar)
  /// installed on the real UDP link; empty = no injected link faults.
  std::string faults;
  std::uint64_t fault_seed = 0;  ///< 0: derive from `seed`
  /// Aggregated broadcasts inside the embedded simulator (see
  /// SimConfig::batched_broadcasts): the per-link seams still see every
  /// (from, to) traversal, so the transport bridge works unchanged.
  /// Changes the schedule — keep off when comparing against recorded
  /// traces.
  bool batched_broadcasts = false;
  // --- decision-service mode (svc/server.h; protocol == "svc") ---
  /// Link-id slots reserved for service clients above the n protocol
  /// ids: clients address the node as ids n .. n+slots-1. Bounded so
  /// n + slots <= kMaxProcs and ports stay within range.
  int svc_client_slots = 256;
  /// A node whose decided frontier trails the observed peer frontier by
  /// more than this many instances requests a decided-prefix snapshot
  /// instead of replaying instance by instance.
  int svc_jump_threshold = 8;
};

/// Outcome of one keep-alive round.
struct RoundResult {
  bool decided = false;  ///< kset only
  std::int64_t decision = INT64_MIN;
  Time decision_ms = kNeverTime;  ///< round-relative (wall == sim time)
  int decision_round = 0;         ///< protocol-internal round count
  Time start_ms = 0;  ///< wall offset of the round's start from node start
  Time elapsed_ms = 0;            ///< round wall duration
};

struct NodeResult {
  bool ok = false;       ///< socket bound and the run completed
  bool decided = false;  ///< kset: every round decided in budget
  std::int64_t decision = INT64_MIN;  ///< last round's decision
  Time decision_ms = kNeverTime;      ///< last round's, round-relative
  int decision_round = 0;
  ProcSet final_suspected;  ///< monitor output at shutdown
  ProcSet final_trusted;    ///< Ω view at shutdown (kset: heartbeat-Ω;
                            ///< wheels: the emulated store's output)
  std::uint64_t events_processed = 0;  ///< summed across rounds
  std::uint64_t heartbeats_sent = 0;
  Time total_elapsed_ms = 0;  ///< wall time over all rounds
  /// Always cfg.rounds entries: restored, executed, skipped and
  /// never-reached rounds alike (the latter stay undecided).
  std::vector<RoundResult> rounds;
  UdpLinkStats link_stats;  ///< cumulative over the link's lifetime
  // Crash-recovery bookkeeping (all zero without a WAL).
  std::uint32_t incarnation = 0;  ///< 0 first boot; +1 per restart
  int restored_rounds = 0;  ///< decided rounds replayed from the WAL
  int skipped_rounds = 0;   ///< tainted rounds never re-run (safety)
  int catchup_jumps = 0;    ///< rejoin jumps to the observed frontier
  bool gave_up = false;     ///< rejoin abandoned: every peer suspected
};

/// Runs one node to completion (decision + linger, or the wall budget).
NodeResult run_node(const NodeConfig& cfg);

/// Flat single-object JSON of a run's outcome — the contract between
/// rt_node and the rt_cluster launcher (parsed by
/// sweep::load_json_numbers on the other side).
std::string node_result_json(const NodeConfig& cfg, const NodeResult& res);

}  // namespace saf::rt
