#include "rt/udp_link.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"

namespace saf::rt {

namespace {

constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

/// Ring depth for both syscall-batching directions: one sendmmsg /
/// recvmmsg moves up to this many datagrams.
constexpr std::size_t kRingDepth = 64;
/// Receive slot size; comfortably above any datagram the builder emits.
constexpr std::size_t kRecvSlot = 2048;

/// Per-peer cap on held future-epoch frames (bounds replay memory; a
/// peer a full window ahead is covered by retransmission instead).
constexpr std::size_t kMaxHeldFrames = 128;

/// Stand-in payload handed to the LinkFaultHook for each frame
/// transmission attempt: at this layer the content is opaque bytes, so
/// the hook sees one fixed tag and nothing corruptible.
struct RawDatagram final : sim::Message {
  std::string_view tag() const override { return "udp"; }
};
const RawDatagram kRawDatagram{};

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return a;
}

}  // namespace

DedupWindow::DedupWindow(std::size_t window)
    : window_(window), slot_seq_(window, kEmptySlot) {
  SAF_CHECK_MSG(window >= 1, "DedupWindow: window must be >= 1");
}

bool DedupWindow::fresh(std::uint64_t seq) {
  if (any_ && seq + window_ <= newest_) return false;  // aged out: assume seen
  const std::size_t slot = static_cast<std::size_t>(seq % window_);
  if (slot_seq_[slot] == seq) return false;
  slot_seq_[slot] = seq;
  if (!any_ || seq > newest_) newest_ = seq;
  any_ = true;
  // Advance the cumulative mark: a seq counts as received once accepted
  // into its slot, or once it aged out of the window entirely (assumed
  // seen — the same reject-biased assumption the overflow path makes).
  for (;;) {
    const std::uint64_t next = cum_ + 1;
    if (slot_seq_[static_cast<std::size_t>(next % window_)] == next ||
        next + window_ <= newest_) {
      cum_ = next;
      continue;
    }
    break;
  }
  return true;
}

struct UdpLink::Rings {
  // Send side: staged datagrams copied out of per-peer builders.
  std::vector<std::uint8_t> send_buf;
  std::vector<sockaddr_in> send_addr;
  std::vector<iovec> send_iov;
  std::vector<mmsghdr> send_msgs;
  std::size_t staged = 0;
  std::size_t slot_bytes = 0;

  // Receive side: fixed buffers recvmmsg scatters into.
  std::vector<std::uint8_t> recv_buf;
  std::vector<iovec> recv_iov;
  std::vector<mmsghdr> recv_msgs;

  explicit Rings(std::size_t max_datagram) : slot_bytes(max_datagram) {
    send_buf.resize(kRingDepth * max_datagram);
    send_addr.resize(kRingDepth);
    send_iov.resize(kRingDepth);
    send_msgs.resize(kRingDepth);
    recv_buf.resize(kRingDepth * kRecvSlot);
    recv_iov.resize(kRingDepth);
    recv_msgs.resize(kRingDepth);
    for (std::size_t i = 0; i < kRingDepth; ++i) {
      recv_iov[i] = {recv_buf.data() + i * kRecvSlot, kRecvSlot};
      std::memset(&recv_msgs[i], 0, sizeof(mmsghdr));
      recv_msgs[i].msg_hdr.msg_iov = &recv_iov[i];
      recv_msgs[i].msg_hdr.msg_iovlen = 1;
    }
  }
};

UdpLink::UdpLink(ProcessId self, int n, std::uint16_t base_port,
                 const Clock& clock, UdpLinkParams params)
    : self_(self),
      n_(n),
      endpoints_(params.endpoints > 0 ? params.endpoints : n),
      base_port_(base_port),
      clock_(clock),
      params_(params),
      rings_(std::make_unique<Rings>(params.max_datagram)) {
  SAF_CHECK(endpoints_ >= n);
  SAF_CHECK_MSG(endpoints_ <= kMaxProcs,
                "UdpLink: endpoints exceeds kMaxProcs (abandoned_peers is "
                "a ProcSet)");
  SAF_CHECK(self >= 0 && self < endpoints_);
  SAF_CHECK_MSG(params.max_datagram >=
                    wire::kDatagramHeader + wire::kFrameHeader +
                        params.max_payload,
                "UdpLink: max_datagram cannot hold one max_payload frame");
  peers_.resize(static_cast<std::size_t>(endpoints_));
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  // Bursty rounds land a whole cluster's fan-out at once; widen the
  // kernel buffers (best effort — EPERM/ENOBUFS just keep the default).
  const int bufsz = 1 << 20;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof(bufsz));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof(bufsz));
  sockaddr_in addr = loopback_addr(port_of(self));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpLink::~UdpLink() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint16_t UdpLink::port_of(ProcessId id) const {
  return static_cast<std::uint16_t>(base_port_ + id);
}

UdpLink::Peer& UdpLink::peer_of(ProcessId id) {
  auto& slot = peers_[static_cast<std::size_t>(id)];
  if (!slot) {
    slot = std::make_unique<Peer>(params_.max_datagram, params_.dedup_window);
    slot->builder.begin(self_, epoch_, params_.incarnation);
  }
  return *slot;
}

void UdpLink::flush_ring() {
  Rings& r = *rings_;
  if (r.staged == 0 || fd_ < 0) return;
  // Errors (full buffers, dead peer ports) are indistinguishable from
  // loss to the protocol; the retransmission layer absorbs them. A
  // short sendmmsg return drops the tail the same way.
  (void)::sendmmsg(fd_, r.send_msgs.data(), static_cast<unsigned>(r.staged),
                   0);
  ++stats_.syscalls_send;
  stats_.datagrams_sent += r.staged;
  r.staged = 0;
}

void UdpLink::enqueue_builder(ProcessId to) {
  Peer& peer = peer_of(to);
  if (peer.builder.empty()) return;
  peer.builder.set_cum_ack(peer.dedup.cumulative());
  peer.builder.set_dest_inc(peer.inc_known ? peer.inc : 0);
  Rings& r = *rings_;
  if (r.staged == kRingDepth) flush_ring();
  const std::size_t slot = r.staged++;
  std::uint8_t* dst = r.send_buf.data() + slot * r.slot_bytes;
  std::memcpy(dst, peer.builder.data(), peer.builder.size());
  r.send_addr[slot] = loopback_addr(port_of(to));
  r.send_iov[slot] = {dst, peer.builder.size()};
  std::memset(&r.send_msgs[slot], 0, sizeof(mmsghdr));
  r.send_msgs[slot].msg_hdr.msg_name = &r.send_addr[slot];
  r.send_msgs[slot].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  r.send_msgs[slot].msg_hdr.msg_iov = &r.send_iov[slot];
  r.send_msgs[slot].msg_hdr.msg_iovlen = 1;
}

void UdpLink::append_frame(ProcessId to, wire::FrameKind kind,
                           std::uint64_t seq, const std::uint8_t* payload,
                           std::size_t len, std::uint32_t epoch) {
  if (fd_ < 0) return;
  int copies = 1;
  if (fault_hook_ != nullptr) {
    const sim::LinkFaultAction a =
        fault_hook_->on_send(self_, to, clock_.now_ms(), kRawDatagram);
    if (a.drop) {
      ++stats_.faults_dropped;
      return;
    }
    if (a.duplicate) copies = 2;
  }
  Peer& peer = peer_of(to);
  for (int c = 0; c < copies; ++c) {
    if (peer.builder.epoch() != epoch || !peer.builder.fits(len)) {
      enqueue_builder(to);
      peer.builder.begin(self_, epoch, params_.incarnation);
    }
    peer.builder.add_frame(kind, seq, payload, len);
    ++stats_.frames_sent;
  }
}

void UdpLink::send(ProcessId to, const std::uint8_t* data, std::size_t len) {
  SAF_CHECK(to >= 0 && to < endpoints_);
  SAF_CHECK_MSG(len <= params_.max_payload,
                "UdpLink::send: payload exceeds max_payload");
  Peer& peer = peer_of(to);
  const std::uint64_t seq = peer.next_seq++;
  Pending p;
  p.seq = seq;
  p.epoch = epoch_;
  p.payload.assign(data, data + len);
  if (peer.inflight.size() < params_.max_inflight) {
    append_frame(to, wire::FrameKind::kData, seq, data, len, epoch_);
    p.next_due = clock_.now_ms() + retry_backoff(params_.rto_base, 0);
    peer.inflight.push_back(std::move(p));
  } else {
    ++stats_.window_stalls;
    peer.backlog.push_back(std::move(p));
  }
}

void UdpLink::send_unreliable(ProcessId to,
                              const std::vector<std::uint8_t>& payload) {
  SAF_CHECK(to >= 0 && to < endpoints_);
  SAF_CHECK_MSG(payload.size() <= params_.max_payload,
                "UdpLink::send_unreliable: payload exceeds max_payload");
  append_frame(to, wire::FrameKind::kUnreliable, 0, payload.data(),
               payload.size(), epoch_);
}

void UdpLink::flush() {
  if (fd_ < 0) return;
  for (ProcessId to = 0; to < endpoints_; ++to) {
    Peer* peer = peers_[static_cast<std::size_t>(to)].get();
    if (peer != nullptr && !peer->builder.empty()) {
      const std::uint32_t e = peer->builder.epoch();
      enqueue_builder(to);
      peer->builder.begin(self_, e, params_.incarnation);
    }
  }
  flush_ring();
}

void UdpLink::set_epoch(std::uint32_t epoch) {
  flush();  // never mix epochs inside one built datagram
  epoch_ = epoch;
}

void UdpLink::promote(ProcessId to) {
  Peer& peer = peer_of(to);
  while (!peer.backlog.empty() &&
         peer.inflight.size() < params_.max_inflight) {
    Pending p = std::move(peer.backlog.front());
    peer.backlog.pop_front();
    append_frame(to, wire::FrameKind::kData, p.seq, p.payload.data(),
                 p.payload.size(), p.epoch);
    p.next_due = clock_.now_ms() + retry_backoff(params_.rto_base, 0);
    peer.inflight.push_back(std::move(p));
  }
}

void UdpLink::retire_upto(ProcessId from, std::uint64_t cum_ack) {
  // in-flight entries are seq-sorted (assigned and promoted in order),
  // so the cumulative ack retires a prefix.
  Peer& peer = peer_of(from);
  while (!peer.inflight.empty() && peer.inflight.front().seq <= cum_ack) {
    peer.inflight.pop_front();
  }
}

void UdpLink::retire_seq(ProcessId from, std::uint64_t seq) {
  Peer& peer = peer_of(from);
  for (auto it = peer.inflight.begin(); it != peer.inflight.end(); ++it) {
    if (it->seq == seq) {
      peer.inflight.erase(it);
      return;
    }
  }
}

void UdpLink::process_datagram(const std::uint8_t* data, std::size_t len,
                               const DeliverFn& deliver) {
  wire::DatagramReader reader;
  // no creation: stray or malformed datagrams are discarded whole (a
  // truncated frame mid-batch rejects every frame around it too).
  if (!reader.init(data, len)) return;
  const ProcessId from = reader.from();
  if (from < 0 || from >= endpoints_ || from == self_) return;
  Peer& peer = peer_of(from);
  // Incarnation fencing, before any state is touched: a datagram from a
  // dead incarnation is late traffic from a process that no longer
  // exists — its acks, cum_ack and data all refer to a conversation the
  // restarted peer cannot continue, so the whole datagram is dropped.
  // When the peer's incarnation *advances*, its fresh seq stream
  // restarts at 1; the receive-side window its previous life filled
  // would swallow it as duplicates, so dedup and held-frame state are
  // discarded (our own inflight/backlog toward the peer is kept — the
  // retransmission layer re-offers that data to the new incarnation,
  // which acks it like any first delivery).
  if (peer.inc_known && reader.incarnation() < peer.inc) {
    ++stats_.stale_inc_dropped;
    return;
  }
  if (!peer.inc_known || reader.incarnation() > peer.inc) {
    if (peer.inc_known) {
      ++stats_.peer_restarts;
      peer.dedup = DedupWindow(params_.dedup_window);
      peer.held.clear();
      // The builder may hold staged ack frames for the dead
      // incarnation's data; sent now they would carry the new
      // incarnation echo and retire fresh seqs they never acknowledged.
      // Discard it — first-attempt data frames lost with it are
      // re-offered by the retransmission layer.
      peer.builder.begin(self_, epoch_, params_.incarnation);
    }
    peer.inc = reader.incarnation();
    peer.inc_known = true;
  }
  // Ack validity fence: acks and the cumulative mark account for the
  // seq stream of the incarnation the sender last saw of *us*. After we
  // restart, a peer that has not yet seen our new incarnation still
  // acknowledges our previous life — applying that would retire fresh
  // in-flight sends that were never delivered.
  const bool acks_valid = reader.dest_inc() == params_.incarnation;
  ++stats_.datagrams_received;
  if (reader.epoch() > max_peer_epoch_) max_peer_epoch_ = reader.epoch();
  if (acks_valid) retire_upto(from, reader.cum_ack());
  wire::FrameView f;
  while (reader.next(&f)) {
    ++stats_.frames_received;
    switch (f.kind) {
      case wire::FrameKind::kAck:
        if (acks_valid) retire_seq(from, f.seq);
        break;
      case wire::FrameKind::kData: {
        if (params_.epoch_gating && reader.epoch() > epoch_) {
          // A peer already in a future round. Hold the immediate next
          // epoch's frames for replay when we advance (no ack yet — the
          // replay acks); anything further ahead is left to the peer's
          // retransmission.
          if (reader.epoch() == epoch_ + 1 &&
              peer.held.size() < kMaxHeldFrames) {
            peer.held.push_back(
                {reader.epoch(), f.seq,
                 std::vector<std::uint8_t>(f.payload, f.payload + f.len)});
            ++stats_.future_held;
          }
          break;
        }
        // Ack every copy: the sender keeps retransmitting until one ack
        // survives the link. Acks batch into the peer's next datagram.
        append_frame(from, wire::FrameKind::kAck, f.seq, nullptr, 0, epoch_);
        ++stats_.acks_sent;
        const bool is_fresh = peer.dedup.fresh(f.seq);
        if (params_.epoch_gating && reader.epoch() < epoch_) {
          // Stale round: the payload's simulator is gone. Acking (and
          // feeding the dedup window) silences the sender without
          // delivering.
          ++stats_.stale_dropped;
          break;
        }
        if (is_fresh) {
          deliver(from, f.payload, f.len);
        } else {
          ++stats_.dups_dropped;
        }
        break;
      }
      case wire::FrameKind::kUnreliable:
        deliver(from, f.payload, f.len);
        break;
    }
  }
  promote(from);  // acks may have opened window space
}

int UdpLink::replay_held(const DeliverFn& deliver) {
  int replayed = 0;
  for (ProcessId from = 0; from < endpoints_; ++from) {
    Peer* pp = peers_[static_cast<std::size_t>(from)].get();
    if (pp == nullptr) continue;
    Peer& peer = *pp;
    while (!peer.held.empty() && peer.held.front().epoch <= epoch_) {
      const Held h = std::move(peer.held.front());
      peer.held.pop_front();
      if (h.epoch != epoch_) continue;  // skipped past it: retransmission
      append_frame(from, wire::FrameKind::kAck, h.seq, nullptr, 0, epoch_);
      ++stats_.acks_sent;
      ++replayed;
      if (peer.dedup.fresh(h.seq)) {
        deliver(from, h.payload.data(), h.payload.size());
      } else {
        ++stats_.dups_dropped;
      }
    }
  }
  return replayed;
}

int UdpLink::poll(const DeliverFn& deliver) {
  if (fd_ < 0) return 0;
  const int replayed = replay_held(deliver);
  Rings& r = *rings_;
  int read = 0;
  for (;;) {
    const int got = ::recvmmsg(fd_, r.recv_msgs.data(),
                               static_cast<unsigned>(kRingDepth),
                               MSG_DONTWAIT, nullptr);
    if (got <= 0) break;  // EWOULDBLOCK or a transient error: drained
    ++stats_.syscalls_recv;
    for (int i = 0; i < got; ++i) {
      process_datagram(r.recv_buf.data() + static_cast<std::size_t>(i) *
                                               kRecvSlot,
                       r.recv_msgs[static_cast<std::size_t>(i)].msg_len,
                       deliver);
    }
    read += got;
    if (static_cast<std::size_t>(got) < kRingDepth) break;
  }
  // Push the drain's worth of batched acks (and anything else staged)
  // back out in one sendmmsg.
  if (read > 0 || replayed > 0) flush();
  return read;
}

void UdpLink::maintain() {
  if (fd_ < 0) return;
  const Time now = clock_.now_ms();
  for (ProcessId to = 0; to < endpoints_; ++to) {
    if (to == self_) continue;
    Peer* pp = peers_[static_cast<std::size_t>(to)].get();
    if (pp == nullptr) continue;
    Peer& peer = *pp;
    promote(to);
    for (auto it = peer.inflight.begin(); it != peer.inflight.end();) {
      if (now < it->next_due) {
        ++it;
        continue;
      }
      if (it->attempts >= params_.max_retries) {
        // The peer is unresponsive past every backoff: abandon, as the
        // model allows for crashed destinations.
        abandoned_peers_.insert(to);
        ++stats_.abandoned;
        it = peer.inflight.erase(it);
        continue;
      }
      ++it->attempts;
      ++stats_.retransmits;
      append_frame(to, wire::FrameKind::kData, it->seq, it->payload.data(),
                   it->payload.size(), it->epoch);
      it->next_due = now + retry_backoff(params_.rto_base, it->attempts);
      ++it;
    }
  }
  flush();
}

std::size_t UdpLink::pending() const {
  std::size_t total = 0;
  for (const auto& p : peers_) {
    if (p) total += p->inflight.size() + p->backlog.size();
  }
  return total;
}

std::size_t UdpLink::pending_excluding(const ProcSet& excluded) const {
  std::size_t total = 0;
  for (ProcessId id = 0; id < endpoints_; ++id) {
    if (excluded.contains(id)) continue;
    const Peer* p = peers_[static_cast<std::size_t>(id)].get();
    if (p != nullptr) total += p->inflight.size() + p->backlog.size();
  }
  return total;
}

Time UdpLink::next_due() const {
  Time due = kNeverTime;
  for (const auto& p : peers_) {
    if (!p) continue;
    for (const Pending& pd : p->inflight) {
      if (due == kNeverTime || pd.next_due < due) due = pd.next_due;
    }
  }
  return due;
}

void UdpLink::wait_readable(int timeout_ms) {
  if (fd_ < 0) return;
  pollfd pfd{fd_, POLLIN, 0};
  (void)::poll(&pfd, 1, timeout_ms);
}

}  // namespace saf::rt
