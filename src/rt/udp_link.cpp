#include "rt/udp_link.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"

namespace saf::rt {

namespace {

constexpr std::uint32_t kMagic = 0x53414652;  // "SAFR"
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kAck = 1;
constexpr std::uint8_t kUnreliable = 2;
constexpr std::size_t kHeader = 4 + 1 + 4 + 8;  // magic, kind, from, seq
constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Stand-in payload handed to the LinkFaultHook for each transmission
/// attempt: at this layer the content is opaque bytes, so the hook sees
/// one fixed tag and nothing corruptible.
struct RawDatagram final : sim::Message {
  std::string_view tag() const override { return "udp"; }
};
const RawDatagram kRawDatagram{};

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return a;
}

}  // namespace

DedupWindow::DedupWindow(std::size_t window)
    : window_(window), slot_seq_(window, kEmptySlot) {
  SAF_CHECK_MSG(window >= 1, "DedupWindow: window must be >= 1");
}

bool DedupWindow::fresh(std::uint64_t seq) {
  if (any_ && seq + window_ <= newest_) return false;  // aged out: assume seen
  const std::size_t slot = static_cast<std::size_t>(seq % window_);
  if (slot_seq_[slot] == seq) return false;
  slot_seq_[slot] = seq;
  if (!any_ || seq > newest_) newest_ = seq;
  any_ = true;
  return true;
}

UdpLink::UdpLink(ProcessId self, int n, std::uint16_t base_port,
                 const Clock& clock, UdpLinkParams params)
    : self_(self),
      n_(n),
      base_port_(base_port),
      clock_(clock),
      params_(params) {
  SAF_CHECK(self >= 0 && self < n);
  dedup_.assign(static_cast<std::size_t>(n), DedupWindow(params.dedup_window));
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr = loopback_addr(port_of(self));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpLink::~UdpLink() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint16_t UdpLink::port_of(ProcessId id) const {
  return static_cast<std::uint16_t>(base_port_ + id);
}

void UdpLink::transmit(ProcessId to, std::uint8_t kind, std::uint64_t seq,
                       const std::uint8_t* payload, std::size_t len) {
  if (fd_ < 0) return;
  int copies = 1;
  if (fault_hook_ != nullptr) {
    const sim::LinkFaultAction a =
        fault_hook_->on_send(self_, to, clock_.now_ms(), kRawDatagram);
    if (a.drop) {
      ++stats_.faults_dropped;
      return;
    }
    if (a.duplicate) copies = 2;
  }
  std::uint8_t buf[kHeader];
  put_u32(buf, kMagic);
  buf[4] = kind;
  put_u32(buf + 5, static_cast<std::uint32_t>(self_));
  put_u64(buf + 9, seq);
  iovec iov[2];
  iov[0] = {buf, kHeader};
  iov[1] = {const_cast<std::uint8_t*>(payload), len};
  sockaddr_in addr = loopback_addr(port_of(to));
  msghdr msg{};
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov;
  msg.msg_iovlen = len > 0 ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    // Errors (full buffers, dead peer ports) are indistinguishable from
    // loss to the protocol; the retransmission layer absorbs them.
    (void)::sendmsg(fd_, &msg, 0);
    ++stats_.datagrams_sent;
  }
}

void UdpLink::send(ProcessId to, std::vector<std::uint8_t> payload) {
  SAF_CHECK(to >= 0 && to < n_);
  SAF_CHECK_MSG(payload.size() <= params_.max_payload,
                "UdpLink::send: payload exceeds max_payload");
  const std::uint64_t seq = next_seq_++;
  transmit(to, kData, seq, payload.data(), payload.size());
  pending_.push_back(Pending{to, seq, std::move(payload),
                             clock_.now_ms() + retry_backoff(params_.rto_base, 0),
                             0});
}

void UdpLink::send_unreliable(ProcessId to,
                              const std::vector<std::uint8_t>& payload) {
  SAF_CHECK(to >= 0 && to < n_);
  transmit(to, kUnreliable, 0, payload.data(), payload.size());
}

void UdpLink::send_ack(ProcessId to, std::uint64_t seq) {
  transmit(to, kAck, seq, nullptr, 0);
  ++stats_.acks_sent;
}

int UdpLink::poll(const DeliverFn& deliver) {
  if (fd_ < 0) return 0;
  int read = 0;
  std::uint8_t buf[2048];
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0) break;  // EWOULDBLOCK or a transient error: drained
    if (static_cast<std::size_t>(got) < kHeader || get_u32(buf) != kMagic) {
      continue;  // no creation: stray datagrams are discarded
    }
    const std::uint8_t kind = buf[4];
    const auto from = static_cast<ProcessId>(get_u32(buf + 5));
    if (from < 0 || from >= n_ || from == self_) continue;
    const std::uint64_t seq = get_u64(buf + 9);
    const std::uint8_t* payload = buf + kHeader;
    const auto len = static_cast<std::size_t>(got) - kHeader;
    ++stats_.datagrams_received;
    ++read;
    switch (kind) {
      case kAck: {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
          if (it->seq == seq && it->to == from) {
            pending_.erase(it);
            break;
          }
        }
        break;
      }
      case kData: {
        // Ack every copy: the sender keeps retransmitting until one ack
        // survives the link.
        send_ack(from, seq);
        if (dedup_[static_cast<std::size_t>(from)].fresh(seq)) {
          deliver(from, payload, len);
        } else {
          ++stats_.dups_dropped;
        }
        break;
      }
      case kUnreliable: {
        deliver(from, payload, len);
        break;
      }
      default:
        break;
    }
  }
  return read;
}

void UdpLink::maintain() {
  const Time now = clock_.now_ms();
  for (std::size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    if (now < p.next_due) {
      ++i;
      continue;
    }
    if (p.attempts >= params_.max_retries) {
      // The peer is unresponsive past every backoff: abandon, as the
      // model allows for crashed destinations.
      abandoned_peers_.insert(p.to);
      ++stats_.abandoned;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++p.attempts;
    ++stats_.retransmits;
    transmit(p.to, kData, p.seq, p.payload.data(), p.payload.size());
    p.next_due = now + retry_backoff(params_.rto_base, p.attempts);
    ++i;
  }
}

void UdpLink::wait_readable(int timeout_ms) {
  if (fd_ < 0) return;
  pollfd pfd{fd_, POLLIN, 0};
  (void)::poll(&pfd, 1, timeout_ms);
}

}  // namespace saf::rt
