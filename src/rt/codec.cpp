#include "rt/codec.h"

#include "core/kset_agreement.h"
#include "core/lower_wheel.h"
#include "core/upper_wheel.h"
#include "sim/reliable_broadcast.h"

namespace saf::rt {

namespace {

// Stable wire type ids — part of the datagram format, never reordered.
enum : std::uint8_t {
  kPhase1 = 1,
  kPhase2 = 2,
  kDecision = 3,
  kRbEnvelope = 4,
  kRbAck = 5,
  kXMove = 6,
  kInquiry = 7,
  kResponse = 8,
  kLMove = 9,
  kHeartbeat = 10,
};

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::vector<std::uint8_t>* out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
}

// ProcSet wire format: one length byte (number of 64-bit words, trailing
// zero words trimmed) followed by that many little-endian u64 words.
// A single-word set costs 9 bytes; the empty set costs 1.
void put_procset(std::vector<std::uint8_t>* out, const ProcSet& s) {
  const int used = s.words_used();
  out->push_back(static_cast<std::uint8_t>(used));
  for (int i = 0; i < used; ++i) put_u64(out, s.word(i));
}

/// Bounds-checked little-endian reader; `ok` latches any overrun.
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint8_t u8() {
    if (left < 1) {
      ok = false;
      return 0;
    }
    --left;
    return *p++;
  }
  std::uint32_t u32() {
    if (left < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    left -= 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  ProcSet procset() {
    const std::uint8_t used = u8();
    if (used > static_cast<std::uint8_t>(ProcSet::word_count())) {
      ok = false;
      return ProcSet();
    }
    std::uint64_t words[ProcSet::kWords] = {};
    for (int i = 0; i < used; ++i) words[i] = u64();
    if (!ok) return ProcSet();
    return ProcSet::from_words(words, used);
  }
};

}  // namespace

bool encode_message(const sim::Message& m, std::vector<std::uint8_t>* out) {
  if (const auto* p1 = dynamic_cast<const core::Phase1Msg*>(&m)) {
    out->push_back(kPhase1);
    put_i32(out, p1->sender);
    put_i32(out, p1->round);
    put_procset(out, p1->leaders);
    put_i64(out, p1->est);
    put_i32(out, p1->instance);
    return true;
  }
  if (const auto* p2 = dynamic_cast<const core::Phase2Msg*>(&m)) {
    out->push_back(kPhase2);
    put_i32(out, p2->sender);
    put_i32(out, p2->round);
    put_i64(out, p2->aux);
    put_i32(out, p2->instance);
    return true;
  }
  if (const auto* d = dynamic_cast<const core::DecisionMsg*>(&m)) {
    out->push_back(kDecision);
    put_i32(out, d->sender);
    put_i64(out, d->value);
    put_i32(out, d->instance);
    return true;
  }
  if (const auto* env = dynamic_cast<const sim::RbEnvelope*>(&m)) {
    out->push_back(kRbEnvelope);
    put_i32(out, env->sender);  // transport-level sender (origin/forwarder)
    put_i32(out, env->origin);
    put_u64(out, env->origin_seq);
    return env->inner != nullptr && encode_message(*env->inner, out);
  }
  if (const auto* ack = dynamic_cast<const sim::RbAckMsg*>(&m)) {
    out->push_back(kRbAck);
    put_i32(out, ack->sender);
    put_i32(out, ack->origin);
    put_u64(out, ack->origin_seq);
    return true;
  }
  if (const auto* x = dynamic_cast<const core::XMoveMsg*>(&m)) {
    out->push_back(kXMove);
    put_i32(out, x->sender);
    put_i32(out, x->leader);
    put_procset(out, x->set);
    return true;
  }
  if (const auto* q = dynamic_cast<const core::InquiryMsg*>(&m)) {
    out->push_back(kInquiry);
    put_i32(out, q->sender);
    put_u64(out, q->attempt);
    return true;
  }
  if (const auto* r = dynamic_cast<const core::ResponseMsg*>(&m)) {
    out->push_back(kResponse);
    put_i32(out, r->sender);
    put_u64(out, r->attempt);
    put_i32(out, r->repr);
    return true;
  }
  if (const auto* l = dynamic_cast<const core::LMoveMsg*>(&m)) {
    out->push_back(kLMove);
    put_i32(out, l->sender);
    put_procset(out, l->inner);
    put_procset(out, l->outer);
    return true;
  }
  return false;
}

namespace {

const sim::Message* decode_inner(Reader& r, util::Arena& arena, int depth);

template <typename M>
const sim::Message* stamped(util::Arena& arena, ProcessId sender, M msg) {
  auto* m = arena.create<M>(std::move(msg));
  m->sender = sender;
  return m;
}

const sim::Message* decode_inner(Reader& r, util::Arena& arena, int depth) {
  const std::uint8_t type = r.u8();
  const auto sender = static_cast<ProcessId>(r.i32());
  if (!r.ok) return nullptr;
  switch (type) {
    case kPhase1: {
      const auto round = static_cast<int>(r.i32());
      // Length-prefixed word array; the reader rejects a word count
      // beyond ProcSet capacity or a truncated array. (Historically a
      // fixed 8-byte mask, decoded with parentheses — ProcSet{u64}
      // would pick the initializer-list ctor and build {mask-as-id}.)
      const ProcSet leaders = r.procset();
      const std::int64_t est = r.i64();
      const auto instance = static_cast<int>(r.i32());
      if (!r.ok || est == core::kNoValue) return nullptr;
      return stamped(arena, sender,
                     core::Phase1Msg{round, leaders, est, instance});
    }
    case kPhase2: {
      const auto round = static_cast<int>(r.i32());
      const std::int64_t aux = r.i64();
      const auto instance = static_cast<int>(r.i32());
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::Phase2Msg{round, aux, instance});
    }
    case kDecision: {
      const std::int64_t value = r.i64();
      const auto instance = static_cast<int>(r.i32());
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::DecisionMsg{value, instance});
    }
    case kRbEnvelope: {
      if (depth > 0) return nullptr;  // envelopes never nest
      const auto origin = static_cast<ProcessId>(r.i32());
      const std::uint64_t origin_seq = r.u64();
      if (!r.ok) return nullptr;
      const sim::Message* inner = decode_inner(r, arena, depth + 1);
      if (inner == nullptr) return nullptr;
      auto* env = arena.create<sim::RbEnvelope>();
      env->sender = sender;
      env->origin = origin;
      env->origin_seq = origin_seq;
      env->inner = inner;
      return env;
    }
    case kRbAck: {
      const auto origin = static_cast<ProcessId>(r.i32());
      const std::uint64_t origin_seq = r.u64();
      if (!r.ok) return nullptr;
      auto* ack = arena.create<sim::RbAckMsg>();
      ack->sender = sender;
      ack->origin = origin;
      ack->origin_seq = origin_seq;
      return ack;
    }
    case kXMove: {
      const auto leader = static_cast<ProcessId>(r.i32());
      const ProcSet set = r.procset();
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::XMoveMsg{leader, set});
    }
    case kInquiry: {
      const std::uint64_t attempt = r.u64();
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::InquiryMsg{attempt});
    }
    case kResponse: {
      const std::uint64_t attempt = r.u64();
      const auto repr = static_cast<ProcessId>(r.i32());
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::ResponseMsg{attempt, repr});
    }
    case kLMove: {
      const ProcSet inner = r.procset();
      const ProcSet outer = r.procset();
      if (!r.ok) return nullptr;
      return stamped(arena, sender, core::LMoveMsg{inner, outer});
    }
    default:
      return nullptr;
  }
}

}  // namespace

const sim::Message* decode_message(const std::uint8_t* data, std::size_t len,
                                   util::Arena& arena) {
  Reader r{data, len};
  const sim::Message* m = decode_inner(r, arena, 0);
  // Trailing bytes mean the buffer is not one well-formed message.
  if (m == nullptr || r.left != 0) return nullptr;
  return m;
}

std::vector<std::uint8_t> encode_heartbeat(std::uint64_t hb_seq) {
  std::vector<std::uint8_t> out;
  out.push_back(kHeartbeat);
  put_u64(&out, hb_seq);
  return out;
}

bool decode_heartbeat(const std::uint8_t* data, std::size_t len,
                      std::uint64_t* hb_seq) {
  if (len != 9 || data[0] != kHeartbeat) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[1 + i]) << (8 * i);
  }
  *hb_seq = v;
  return true;
}

}  // namespace saf::rt
