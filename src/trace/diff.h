// Structural trace comparison and summarization.
//
// Two traces of the same configuration are either identical or they
// diverge at a first event — and that first divergence is the most
// useful fact a regression can report: it names the instant, the
// process and the field where behaviour drifted, with the surrounding
// events for context. The golden-trace test suite and the trace_tool
// CLI share this code, so "what ctest checks" and "what a human diffs"
// are the same comparison.
//
// Comparison is structural, not textual: lines are parsed into their
// (time, kind, actor, peer, value, tag) fields first, so formatting is
// free to evolve while golden files stay valid, and the report can say
// *which field* moved. Blank lines and '#' comments are ignored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace saf::trace {

/// One trace line, decoded. `raw` keeps the original text for reports.
struct ParsedEvent {
  Time time = 0;
  std::string kind;
  ProcessId actor = -1;
  ProcessId peer = -1;
  std::int64_t value = 0;
  std::string tag;
  std::string raw;

  bool same_shape(const ParsedEvent& o) const {
    return time == o.time && kind == o.kind && actor == o.actor &&
           peer == o.peer && value == o.value && tag == o.tag;
  }
};

/// Parses one canonical line (format_event's output). Returns false on
/// malformed input.
bool parse_trace_line(const std::string& line, ParsedEvent* out);

/// Non-comment, non-blank lines of a trace stream / file. The file
/// variant throws std::runtime_error when the file cannot be read.
std::vector<std::string> read_trace_lines(std::istream& is);
std::vector<std::string> read_trace_file(const std::string& path);

struct TraceDiff {
  bool identical = false;
  /// Index of the first divergent event (== common length when one
  /// trace is a strict prefix of the other). Meaningful iff !identical.
  std::size_t first_divergence = 0;
  /// One line naming the divergence ("event 42: field value: 3 vs 7").
  std::string reason;
  /// Multi-line human report: the divergent pair plus `context`
  /// preceding events from each side.
  std::string report;
};

/// Compares two traces event by event. `context` bounds how many
/// preceding events the report quotes. Malformed lines diverge at their
/// index with a parse-error reason.
TraceDiff diff_traces(const std::vector<std::string>& lhs,
                      const std::vector<std::string>& rhs, int context = 3);

/// Per-kind and per-process tables: event counts, time span, tag
/// vocabulary. Tolerates (and counts) malformed lines.
std::string summarize_trace(const std::vector<std::string>& lines);

}  // namespace saf::trace
