// Structured run tracing: typed trace points and pluggable sinks.
//
// A run's behaviour — which message goes where and when, when a process
// crashes, when a detector's output changes, when a wheel moves or a
// protocol decides — is emitted as a stream of TraceEvents into a
// TraceSink. The stream is a pure function of the run's (seed, crash
// plan, delay policy, protocol) identity, so two traces can be compared
// structurally (trace/diff.h) and canonical runs can be pinned as golden
// files (tests/golden/). With no sink installed every trace point
// compiles down to a branch on a null pointer; see docs/observability.md.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace saf::trace {

/// The trace-point vocabulary. Values are stable (they appear in golden
/// files by name, not by number); add new kinds at the end.
enum class Kind : std::uint8_t {
  kEventPost = 0,   ///< closure event scheduled (value = seq)
  kEventDispatch,   ///< closure event dispatched (value = seq)
  kSend,            ///< message handed to the network (value = delay)
  kDeliver,         ///< message handed to an alive process
  kDrop,            ///< message suppressed (value: 0 = sender crashed,
                    ///<   1 = recipient crashed, 2 = lossy link,
                    ///<   3 = partitioned link)
  kCrash,           ///< process crash took effect
  kFdQuery,         ///< failure-detector oracle queried
  kFdChange,        ///< failure-detector output changed (value = encoding)
  kXMove,           ///< lower wheel advanced its cursor (value = cursor)
  kLMove,           ///< upper wheel advanced its cursor (value = cursor)
  kDecide,          ///< protocol decision (value = decided value)
  kQuiesce,         ///< quiescence witness (value = last activity time)
  kNote,            ///< harness-level observation (value, tag free-form)
  kDup,             ///< link fault duplicated a message (value = extra delay)
  kRetransmit,      ///< quasi-reliable layer resent a message (value = attempt)
  kCount_,          ///< number of kinds; not a kind
};

constexpr int kKindCount = static_cast<int>(Kind::kCount_);

constexpr std::uint32_t bit(Kind k) {
  return std::uint32_t{1} << static_cast<int>(k);
}

constexpr std::uint32_t kAllKinds =
    (std::uint32_t{1} << kKindCount) - 1;

/// Default sink mask: the semantic shape of a run — message flow,
/// crashes, detector output changes and protocol milestones. The
/// per-event engine internals (post/dispatch) and per-query oracle
/// traffic are opt-in: they multiply the volume without adding
/// information beyond the delivery schedule (queries still count into
/// metrics regardless of the mask).
constexpr std::uint32_t kDefaultMask =
    kAllKinds &
    ~(bit(Kind::kEventPost) | bit(Kind::kEventDispatch) |
      bit(Kind::kFdQuery));

/// Stable lowercase name ("send", "fd_change", ...). Aborts on kCount_.
std::string_view kind_name(Kind k);
/// Inverse of kind_name; returns false on an unknown name.
bool kind_from_name(std::string_view name, Kind* out);

/// One trace point. `tag` must point at storage outliving the event
/// (message tags, oracle names and literal strings all qualify).
struct TraceEvent {
  Time time = 0;
  Kind kind = Kind::kNote;
  ProcessId actor = -1;  ///< process acting / queried / crashing
  ProcessId peer = -1;   ///< counterpart (sender of a delivery, ...)
  std::int64_t value = 0;  ///< kind-specific payload (see Kind)
  std::string_view tag = {};  ///< message tag / oracle name / detail
};

/// Canonical one-line JSON form, identical across platforms:
///   {"t":120,"k":"send","a":0,"p":3,"v":5,"tag":"phase1"}
std::string format_event(const TraceEvent& e);

class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void on_event(const TraceEvent& e) = 0;
};

/// Keeps every event, in order. The golden-trace tests capture runs
/// through this. Tags are copied into owned storage at capture time, so
/// the sink stays valid after the run harness (and the oracle adapters
/// whose name strings tags point into) is gone.
class VectorSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override;
  const std::vector<TraceEvent>& events() const { return events_; }
  /// Canonical lines of all captured events.
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> lines_;
  std::deque<std::string> tags_;  ///< owned tag storage, stable addresses
};

/// Fixed-capacity ring holding the newest events — the flight recorder
/// for long runs where only the tail matters (and the traced bench,
/// where an unbounded sink would measure the allocator instead).
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity = 4096);
  void on_event(const TraceEvent& e) override;
  /// Events seen over the sink's whole lifetime.
  std::uint64_t total() const { return total_; }
  /// The retained tail, oldest first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// Streams canonical lines to an ostream as they arrive (the `--trace`
/// flag of check_runner / sweep_runner). Crash-safe: the stream is
/// flushed after every kCrash event and again on destruction, so a
/// thrown invariant (stack unwind) or a post-mortem on a faulty run
/// still sees the full tail of the trace instead of losing whatever sat
/// in the stdio buffer.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  ~JsonlSink() override;
  void on_event(const TraceEvent& e) override;
  /// Pushes buffered lines to the underlying stream now.
  void flush();

 private:
  std::ostream& os_;
};

}  // namespace saf::trace
