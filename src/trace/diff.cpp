#include "trace/diff.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>

namespace saf::trace {

namespace {

/// Scans `"key":` in line and decodes the integer after it.
bool find_int(const std::string& line, const char* key, std::int64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start) return false;
  *out = v;
  return true;
}

/// Scans `"key":"..."` and decodes the string after it (no escapes —
/// format_event never emits them).
bool find_str(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

/// Appends `context` events before `at` from `lines`, one per line.
void append_context(std::string* report, const char* side,
                    const std::vector<std::string>& lines, std::size_t at,
                    int context) {
  *report += std::string("  context (") + side + "):\n";
  const std::size_t first =
      at > static_cast<std::size_t>(context) ? at - static_cast<std::size_t>(context) : 0;
  for (std::size_t i = first; i < at && i < lines.size(); ++i) {
    *report += "    [" + std::to_string(i) + "] " + lines[i] + "\n";
  }
}

std::string field_divergence(const ParsedEvent& a, const ParsedEvent& b) {
  if (a.time != b.time) {
    return "time: " + std::to_string(a.time) + " vs " + std::to_string(b.time);
  }
  if (a.kind != b.kind) return "kind: " + a.kind + " vs " + b.kind;
  if (a.actor != b.actor) {
    return "actor: p" + std::to_string(a.actor) + " vs p" +
           std::to_string(b.actor);
  }
  if (a.peer != b.peer) {
    return "peer: p" + std::to_string(a.peer) + " vs p" +
           std::to_string(b.peer);
  }
  if (a.value != b.value) {
    return "value: " + std::to_string(a.value) + " vs " +
           std::to_string(b.value);
  }
  return "tag: '" + a.tag + "' vs '" + b.tag + "'";
}

}  // namespace

bool parse_trace_line(const std::string& line, ParsedEvent* out) {
  std::int64_t t = 0, a = 0, p = 0, v = 0;
  if (!find_int(line, "t", &t) || !find_int(line, "a", &a) ||
      !find_int(line, "p", &p) || !find_int(line, "v", &v)) {
    return false;
  }
  if (!find_str(line, "k", &out->kind) || !find_str(line, "tag", &out->tag)) {
    return false;
  }
  out->time = t;
  out->actor = static_cast<ProcessId>(a);
  out->peer = static_cast<ProcessId>(p);
  out->value = v;
  out->raw = line;
  return true;
}

std::vector<std::string> read_trace_lines(std::istream& is) {
  std::vector<std::string> out;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line.front() != '{' || line.back() != '}') {
      // A SIGKILLed writer (the chaos harness's bread and butter) tears
      // the line it was emitting; skip it rather than feed a fragment
      // to the diff — with a warning so the gap is visible.
      std::fprintf(stderr,
                   "trace: skipping truncated jsonl line (%zu bytes)\n",
                   line.size());
      continue;
    }
    out.push_back(line);
  }
  return out;
}

std::vector<std::string> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read trace file: " + path);
  return read_trace_lines(is);
}

TraceDiff diff_traces(const std::vector<std::string>& lhs,
                      const std::vector<std::string>& rhs, int context) {
  TraceDiff d;
  const std::size_t common = std::min(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < common; ++i) {
    ParsedEvent a, b;
    const bool pa = parse_trace_line(lhs[i], &a);
    const bool pb = parse_trace_line(rhs[i], &b);
    if (!pa || !pb) {
      d.first_divergence = i;
      d.reason = "event " + std::to_string(i) + ": malformed line in " +
                 (pa ? "rhs" : "lhs");
      d.report = d.reason + "\n  lhs: " + lhs[i] + "\n  rhs: " + rhs[i] + "\n";
      return d;
    }
    if (!a.same_shape(b)) {
      d.first_divergence = i;
      d.reason = "event " + std::to_string(i) + " (t=" +
                 std::to_string(a.time) + "): field " + field_divergence(a, b);
      d.report = "traces diverge at event " + std::to_string(i) + ":\n" +
                 "  lhs: " + lhs[i] + "\n  rhs: " + rhs[i] + "\n  " +
                 field_divergence(a, b) + "\n";
      append_context(&d.report, "lhs", lhs, i, context);
      append_context(&d.report, "rhs", rhs, i, context);
      return d;
    }
  }
  if (lhs.size() != rhs.size()) {
    d.first_divergence = common;
    const bool lhs_longer = lhs.size() > rhs.size();
    d.reason = "event " + std::to_string(common) + ": " +
               (lhs_longer ? "rhs" : "lhs") + " ends early (" +
               std::to_string(lhs.size()) + " vs " +
               std::to_string(rhs.size()) + " events)";
    d.report = d.reason + "\n  next " + (lhs_longer ? "lhs" : "rhs") +
               " event: " + (lhs_longer ? lhs[common] : rhs[common]) + "\n";
    append_context(&d.report, "common tail", lhs_longer ? lhs : rhs, common,
                   context);
    return d;
  }
  d.identical = true;
  d.reason = "identical (" + std::to_string(lhs.size()) + " events)";
  d.report = d.reason + "\n";
  return d;
}

std::string summarize_trace(const std::vector<std::string>& lines) {
  std::map<std::string, std::uint64_t> by_kind;
  std::map<ProcessId, std::uint64_t> by_actor;
  std::map<std::string, std::uint64_t> by_tag;
  std::uint64_t malformed = 0;
  Time t_min = 0, t_max = 0;
  bool any = false;
  for (const std::string& line : lines) {
    ParsedEvent e;
    if (!parse_trace_line(line, &e)) {
      ++malformed;
      continue;
    }
    ++by_kind[e.kind];
    if (e.actor >= 0) ++by_actor[e.actor];
    if (!e.tag.empty()) ++by_tag[e.tag];
    if (!any) {
      t_min = t_max = e.time;
      any = true;
    } else {
      t_min = std::min(t_min, e.time);
      t_max = std::max(t_max, e.time);
    }
  }
  std::ostringstream os;
  os << "events: " << (lines.size() - malformed);
  if (malformed > 0) os << " (+" << malformed << " malformed)";
  if (any) os << ", time span [" << t_min << ", " << t_max << "]";
  os << "\n";
  os << "by kind:\n";
  for (const auto& [kind, count] : by_kind) {
    os << "  " << kind << ": " << count << "\n";
  }
  os << "by process:\n";
  for (const auto& [actor, count] : by_actor) {
    os << "  p" << actor << ": " << count << "\n";
  }
  if (!by_tag.empty()) {
    os << "by tag:\n";
    for (const auto& [tag, count] : by_tag) {
      os << "  " << tag << ": " << count << "\n";
    }
  }
  return os.str();
}

}  // namespace saf::trace
