#include "trace/trace.h"

#include <ostream>

#include "util/check.h"

namespace saf::trace {

namespace {

constexpr std::string_view kKindNames[kKindCount] = {
    "post",      "dispatch",  "send",   "deliver", "drop",
    "crash",     "fd_query",  "fd_change", "x_move", "l_move",
    "decide",    "quiesce",   "note",   "dup",     "retransmit",
};

}  // namespace

std::string_view kind_name(Kind k) {
  const int i = static_cast<int>(k);
  SAF_CHECK(i >= 0 && i < kKindCount);
  return kKindNames[i];
}

bool kind_from_name(std::string_view name, Kind* out) {
  for (int i = 0; i < kKindCount; ++i) {
    if (kKindNames[i] == name) {
      *out = static_cast<Kind>(i);
      return true;
    }
  }
  return false;
}

std::string format_event(const TraceEvent& e) {
  std::string out;
  out.reserve(64);
  out += "{\"t\":";
  out += std::to_string(e.time);
  out += ",\"k\":\"";
  out += kind_name(e.kind);
  out += "\",\"a\":";
  out += std::to_string(e.actor);
  out += ",\"p\":";
  out += std::to_string(e.peer);
  out += ",\"v\":";
  out += std::to_string(e.value);
  out += ",\"tag\":\"";
  // Tags are short identifiers from a fixed vocabulary; escaping is
  // limited to the characters that would break the line format.
  for (const char c : e.tag) {
    if (c == '"' || c == '\\' || c == '\n') {
      out += '_';
    } else {
      out += c;
    }
  }
  out += "\"}";
  return out;
}

TraceSink::~TraceSink() = default;

void VectorSink::on_event(const TraceEvent& e) {
  TraceEvent owned = e;
  if (!e.tag.empty()) {
    // Reuse the previous owned tag when it matches (tags come from a
    // tiny fixed vocabulary, so this is the common case).
    if (tags_.empty() || tags_.back() != e.tag) tags_.emplace_back(e.tag);
    owned.tag = tags_.back();
  }
  events_.push_back(owned);
  lines_.push_back(format_event(owned));
}

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  SAF_CHECK(capacity > 0);
  ring_.reserve(capacity);
}

void RingSink::on_event(const TraceEvent& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = e;
  }
  ++total_;
}

std::vector<TraceEvent> RingSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
    return out;
  }
  const std::size_t start = static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

JsonlSink::~JsonlSink() {
  os_.flush();
}

void JsonlSink::on_event(const TraceEvent& e) {
  os_ << format_event(e) << '\n';
  // A crash is exactly the event after which the rest of the trace may
  // never come — make sure everything up to it reaches the file.
  if (e.kind == Kind::kCrash) flush();
}

void JsonlSink::flush() {
  os_.flush();
}

}  // namespace saf::trace
