#include "trace/tracer.h"

namespace saf::trace {

void Tracer::install(TraceSink* sink, MetricsRegistry* metrics,
                     std::uint32_t mask) {
  sink_ = sink;
  metrics_ = metrics;
  mask_ = mask;
  if (metrics_ != nullptr) {
    c_posted_ = &metrics_->counter("sim.events_posted");
    c_processed_ = &metrics_->counter("sim.events_processed");
    c_sends_ = &metrics_->counter("sim.messages_sent");
    c_delivers_ = &metrics_->counter("sim.messages_delivered");
    c_drops_ = &metrics_->counter("sim.messages_dropped");
    c_dups_ = &metrics_->counter("net.dups");
    c_retransmits_ = &metrics_->counter("net.retransmits");
    c_crashes_ = &metrics_->counter("sim.crashes");
    c_fd_queries_ = &metrics_->counter("fd.queries");
    c_fd_changes_ = &metrics_->counter("fd.output_changes");
    h_delay_ = &metrics_->histogram("sim.delay");
  } else {
    c_posted_ = nullptr;
    c_processed_ = nullptr;
    c_sends_ = nullptr;
    c_delivers_ = nullptr;
    c_drops_ = nullptr;
    c_dups_ = nullptr;
    c_retransmits_ = nullptr;
    c_crashes_ = nullptr;
    c_fd_queries_ = nullptr;
    c_fd_changes_ = nullptr;
    h_delay_ = nullptr;
  }
}

std::string_view Tracer::protocol_metric_name(Kind kind) {
  switch (kind) {
    case Kind::kXMove:
      return "protocol.x_moves";
    case Kind::kLMove:
      return "protocol.l_moves";
    case Kind::kDecide:
      return "protocol.decides";
    case Kind::kQuiesce:
      return "protocol.quiesce_marks";
    default:
      return "protocol.notes";
  }
}

}  // namespace saf::trace
