#include "trace/metrics.h"

#include <bit>

namespace saf::trace {

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[std::bit_width(static_cast<std::uint64_t>(v))];
}

std::int64_t Histogram::quantile_bound(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count).
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.999999);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank && seen > 0) {
      return i == 0 ? 0 : (std::int64_t{1} << i) - 1;  // bucket upper bound
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    out += std::to_string(h.sum());
    out += ",\"min\":";
    out += std::to_string(h.min());
    out += ",\"max\":";
    out += std::to_string(h.max());
    out += ",\"p50\":";
    out += std::to_string(h.quantile_bound(0.50));
    out += ",\"p99\":";
    out += std::to_string(h.quantile_bound(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace saf::trace
