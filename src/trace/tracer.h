// The Tracer: the one emission point every instrumented layer calls.
//
// A Simulator owns a Tracer; the network, the event loop, the
// failure-detector adapters and the protocol components reach it through
// their Simulator / host Process. Each trace point is an inline method
// that (a) forwards a TraceEvent to the installed sink if that Kind is
// in the mask, and (b) bumps pre-resolved metric handles. With nothing
// installed — the default, and the state every gated bench runs in —
// both halves reduce to a null-pointer test, so tracing costs nothing
// when it is off.
#pragma once

#include <cstdint>
#include <string_view>

#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/types.h"

namespace saf::trace {

class Tracer {
 public:
  /// Installs (or clears, with nullptrs) the sink and metrics registry.
  /// `mask` selects which kinds reach the sink; metrics are always
  /// collected when a registry is installed. Counter/histogram handles
  /// are resolved here, once, not on the hot path.
  void install(TraceSink* sink, MetricsRegistry* metrics,
               std::uint32_t mask = kDefaultMask);

  bool active() const { return sink_ != nullptr || metrics_ != nullptr; }
  TraceSink* sink() const { return sink_; }
  MetricsRegistry* metrics() const { return metrics_; }
  std::uint32_t mask() const { return mask_; }

  bool wants(Kind k) const { return sink_ != nullptr && (mask_ & bit(k)); }

  // --- engine trace points --------------------------------------------

  void event_post(Time at, std::uint64_t seq) {
    if (wants(Kind::kEventPost)) {
      emit({at, Kind::kEventPost, -1, -1, static_cast<std::int64_t>(seq), {}});
    }
    if (c_posted_ != nullptr) c_posted_->add();
  }

  void event_dispatch(Time now, std::uint64_t seq) {
    if (wants(Kind::kEventDispatch)) {
      emit({now, Kind::kEventDispatch, -1, -1,
            static_cast<std::int64_t>(seq), {}});
    }
  }

  /// Every popped event (closure or delivery) counts here.
  void event_processed() {
    if (c_processed_ != nullptr) c_processed_->add();
  }

  void send(Time now, ProcessId from, ProcessId to, std::string_view tag,
            Time delay) {
    if (wants(Kind::kSend)) emit({now, Kind::kSend, from, to, delay, tag});
    if (c_sends_ != nullptr) {
      c_sends_->add();
      h_delay_->record(delay);
    }
  }

  void deliver(Time now, ProcessId to, ProcessId from, std::string_view tag) {
    if (wants(Kind::kDeliver)) emit({now, Kind::kDeliver, to, from, 0, tag});
    if (c_delivers_ != nullptr) c_delivers_->add();
  }

  /// site: 0 = sender crashed at send time, 1 = recipient crashed at
  /// delivery time, 2 = lossy link, 3 = partitioned link.
  void drop(Time now, ProcessId actor, ProcessId peer, std::string_view tag,
            int site) {
    if (wants(Kind::kDrop)) emit({now, Kind::kDrop, actor, peer, site, tag});
    if (c_drops_ != nullptr) c_drops_->add();
  }

  /// A link fault duplicated a message; `extra_delay` is the additional
  /// delay applied to the duplicate copy.
  void dup(Time now, ProcessId from, ProcessId to, std::string_view tag,
           Time extra_delay) {
    if (wants(Kind::kDup)) emit({now, Kind::kDup, from, to, extra_delay, tag});
    if (c_dups_ != nullptr) c_dups_->add();
  }

  /// The quasi-reliable broadcast layer resent an unacknowledged
  /// envelope (value = retry attempt number, 1-based).
  void retransmit(Time now, ProcessId from, ProcessId to,
                  std::string_view tag, int attempt) {
    if (wants(Kind::kRetransmit)) {
      emit({now, Kind::kRetransmit, from, to, attempt, tag});
    }
    if (c_retransmits_ != nullptr) c_retransmits_->add();
  }

  void crash(Time now, ProcessId pid) {
    if (wants(Kind::kCrash)) emit({now, Kind::kCrash, pid, -1, 0, {}});
    if (c_crashes_ != nullptr) c_crashes_->add();
  }

  // --- failure-detector trace points ----------------------------------

  void fd_query(Time now, ProcessId i, std::string_view oracle) {
    if (wants(Kind::kFdQuery)) emit({now, Kind::kFdQuery, i, -1, 0, oracle});
    if (c_fd_queries_ != nullptr) c_fd_queries_->add();
  }

  void fd_change(Time now, ProcessId i, std::int64_t encoding,
                 std::string_view oracle) {
    if (wants(Kind::kFdChange)) {
      emit({now, Kind::kFdChange, i, -1, encoding, oracle});
    }
    if (c_fd_changes_ != nullptr) c_fd_changes_->add();
  }

  // --- protocol-level trace points ------------------------------------

  /// kXMove / kLMove / kDecide / kQuiesce / kNote.
  void protocol(Kind kind, Time now, ProcessId actor, std::int64_t value,
                std::string_view tag) {
    if (wants(kind)) emit({now, kind, actor, -1, value, tag});
    if (metrics_ != nullptr) {
      metrics_->counter(protocol_metric_name(kind)).add();
    }
  }

 private:
  void emit(const TraceEvent& e) { sink_->on_event(e); }
  static std::string_view protocol_metric_name(Kind kind);

  TraceSink* sink_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t mask_ = kDefaultMask;

  // Metric handles, resolved by install(); null iff metrics_ is null.
  Counter* c_posted_ = nullptr;
  Counter* c_processed_ = nullptr;
  Counter* c_sends_ = nullptr;
  Counter* c_delivers_ = nullptr;
  Counter* c_drops_ = nullptr;
  Counter* c_dups_ = nullptr;
  Counter* c_retransmits_ = nullptr;
  Counter* c_crashes_ = nullptr;
  Counter* c_fd_queries_ = nullptr;
  Counter* c_fd_changes_ = nullptr;
  Histogram* h_delay_ = nullptr;
};

}  // namespace saf::trace
