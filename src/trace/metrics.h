// Run metrics: named counters and virtual-time histograms.
//
// MetricsRegistry replaces the ad-hoc counters the harnesses used to
// print: the engine, the failure-detector adapters and the protocol
// harnesses all increment named metrics through the Tracer, and the
// registry exports one stable JSON object (`--metrics FILE` on
// check_runner / sweep_runner). Registration returns node-stable
// references, so hot paths cache a Counter* once and pay a single
// increment per event. Virtual-time histograms bucket by power of two —
// exact enough for decision-latency and delay distributions, and
// platform-independent (no floating point in the bucketing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/types.h"

namespace saf::trace {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t d = 1) { value += d; }
};

/// Histogram of non-negative integer samples (virtual times, counts).
/// Bucket i holds samples with bit_width(v) == i, i.e. [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return min_; }  ///< 0 when empty
  std::int64_t max() const { return max_; }
  const std::uint64_t* buckets() const { return buckets_; }
  /// Nearest-rank quantile, resolved to its bucket's upper bound
  /// (exact for the regression questions the benches ask: "did p99
  /// decision latency double").
  std::int64_t quantile_bound(double q) const;

 private:
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  /// Finds or creates; the reference stays valid for the registry's
  /// lifetime (map nodes are stable).
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// One JSON object, keys sorted:
  ///   {"counters":{...},"histograms":{"x":{"count":..,"sum":..,
  ///    "min":..,"max":..,"p50":..,"p99":..}}}
  /// Callers embed it under their own schema key.
  std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace saf::trace
