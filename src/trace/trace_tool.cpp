// trace_tool: inspect and compare structured run traces.
//
//   trace_tool diff A.jsonl B.jsonl [--context N]
//       Structural comparison. Exit 0 when identical, 1 with a report
//       naming the first divergent event otherwise.
//   trace_tool summary FILE.jsonl
//       Per-kind / per-process / per-tag tables and the time span.
//
// Exit codes: 0 ok / identical, 1 traces differ, 2 usage or I/O error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/diff.h"

namespace {

int usage(std::ostream& os) {
  os << "usage: trace_tool diff <lhs.jsonl> <rhs.jsonl> [--context N]\n"
     << "       trace_tool summary <trace.jsonl>\n"
     << "       trace_tool --help\n"
     << "\n"
     << "diff exits 0 when the traces are structurally identical, 1 with\n"
     << "a report naming the first divergent event otherwise.\n"
     << "Lines starting with '#' and blank lines are ignored.\n";
  return 2;
}

int run_diff(const std::vector<std::string>& args) {
  std::string lhs_path, rhs_path;
  int context = 3;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--context") {
      if (i + 1 >= args.size()) {
        std::cerr << "trace_tool: --context needs a value\n";
        return usage(std::cerr);
      }
      context = std::stoi(args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "trace_tool: unknown flag '" << args[i] << "'\n";
      return usage(std::cerr);
    } else if (lhs_path.empty()) {
      lhs_path = args[i];
    } else if (rhs_path.empty()) {
      rhs_path = args[i];
    } else {
      std::cerr << "trace_tool: too many arguments\n";
      return usage(std::cerr);
    }
  }
  if (lhs_path.empty() || rhs_path.empty()) {
    std::cerr << "trace_tool: diff needs two trace files\n";
    return usage(std::cerr);
  }
  const auto lhs = saf::trace::read_trace_file(lhs_path);
  const auto rhs = saf::trace::read_trace_file(rhs_path);
  const saf::trace::TraceDiff d = saf::trace::diff_traces(lhs, rhs, context);
  if (d.identical) {
    std::cout << d.reason << "\n";
    return 0;
  }
  std::cout << d.report;
  return 1;
}

int run_summary(const std::vector<std::string>& args) {
  if (args.size() != 1 || (args[0].size() > 1 && args[0][0] == '-')) {
    std::cerr << "trace_tool: summary needs exactly one trace file\n";
    return usage(std::cerr);
  }
  const auto lines = saf::trace::read_trace_file(args[0]);
  std::cout << saf::trace::summarize_trace(lines);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr);
  if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    usage(std::cout);
    return 0;
  }
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "diff") return run_diff(args);
    if (cmd == "summary") return run_summary(args);
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "trace_tool: unknown command '" << cmd << "'\n";
  return usage(std::cerr);
}
