#include "check/explorer.h"

#include "util/check.h"

namespace saf::check {

RunOutcome run_case(const Protocol& p, const ScheduleCase& c) {
  return p.run(c, RunContext{});
}

ExploreReport explore(const Protocol& p, const ExploreOptions& opt) {
  util::require(opt.seeds >= 0, "explore: negative seed count");
  ExploreReport report;
  for (int i = 0; i < opt.seeds; ++i) {
    const ScheduleCase c =
        generate_case(p, opt.first_seed + static_cast<std::uint64_t>(i));
    RunOutcome out = run_case(p, c);
    ++report.runs;
    if (!out.ok) {
      report.violations.push_back(Violation{c, std::move(out)});
      if (static_cast<int>(report.violations.size()) >= opt.max_violations) {
        break;
      }
    }
  }
  return report;
}

}  // namespace saf::check
