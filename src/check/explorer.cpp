#include "check/explorer.h"

#include <utility>
#include <vector>

#include "sweep/thread_pool.h"
#include "util/check.h"

namespace saf::check {

RunOutcome run_case(const Protocol& p, const ScheduleCase& c) {
  return p.run(c, RunContext{});
}

RunOutcome run_case(const Protocol& p, const ScheduleCase& c,
                    const ExploreOptions& opt) {
  RunContext ctx;
  ctx.faults = opt.faults;
  ctx.max_events = opt.max_events;
  ctx.wall_budget_ms = opt.wall_budget_ms;
  return p.run(c, ctx);
}

namespace {

/// Runs one case, quarantining a throwing worker into a WORKER_ERROR
/// outcome so one poisoned seed cannot take down a sweep.
RunOutcome run_quarantined(const Protocol& p, const ScheduleCase& c,
                           const ExploreOptions& opt) {
  try {
    return run_case(p, c, opt);
  } catch (const std::exception& e) {
    RunOutcome out;
    out.ok = false;
    out.verdict = fault::Verdict::kWorkerError;
    out.violations.push_back(
        {"worker/exception", std::string("run threw: ") + e.what()});
    return out;
  }
}

/// Folds per-seed outcomes into a report in seed order, reproducing the
/// serial loop exactly — including report.runs stopping at the seed that
/// filled the violation budget.
ExploreReport fold(std::vector<std::pair<ScheduleCase, RunOutcome>>& outcomes,
                   int max_violations) {
  ExploreReport report;
  for (auto& [c, out] : outcomes) {
    ++report.runs;
    ++report.verdicts[static_cast<std::size_t>(out.verdict)];
    if (!out.ok) {
      report.violations.push_back(Violation{c, std::move(out)});
      if (static_cast<int>(report.violations.size()) >= max_violations) {
        break;
      }
    }
  }
  return report;
}

}  // namespace

ExploreReport explore(const Protocol& p, const ExploreOptions& opt) {
  util::require(opt.seeds >= 0, "explore: negative seed count");
  if (opt.jobs == 1) {
    // Serial fast path: run and fold in one pass, stopping at the
    // violation budget without touching later seeds at all.
    ExploreReport report;
    for (int i = 0; i < opt.seeds; ++i) {
      const ScheduleCase c =
          generate_case(p, opt.first_seed + static_cast<std::uint64_t>(i));
      RunOutcome out = run_quarantined(p, c, opt);
      ++report.runs;
      ++report.verdicts[static_cast<std::size_t>(out.verdict)];
      if (!out.ok) {
        report.violations.push_back(Violation{c, std::move(out)});
        if (static_cast<int>(report.violations.size()) >=
            opt.max_violations) {
          break;
        }
      }
    }
    return report;
  }
  // Parallel path: every seed's outcome is a pure function of the seed,
  // so compute them all index-addressed and fold serially afterwards.
  // Seeds past a max_violations early stop are simulated (wasted work in
  // the violation-heavy case) but never reported, keeping the report
  // byte-identical to the serial sweep.
  std::vector<std::pair<ScheduleCase, RunOutcome>> outcomes(
      static_cast<std::size_t>(opt.seeds));
  sweep::ThreadPool pool(opt.jobs);
  pool.parallel_for(outcomes.size(), [&](std::size_t i) {
    const ScheduleCase c =
        generate_case(p, opt.first_seed + static_cast<std::uint64_t>(i));
    RunOutcome out = run_quarantined(p, c, opt);
    outcomes[i] = {c, std::move(out)};
  });
  return fold(outcomes, opt.max_violations);
}

}  // namespace saf::check
