// Record/replay of explored schedules.
//
// A run of the simulator is a deterministic function of (seed, crash
// plan, delay policy). Recording therefore only has to capture the
// *delay decisions* the adversary made — with those replayed verbatim,
// the event queue reconstructs the identical delivery order byte for
// byte, independently of any future change to the adversary policies
// themselves. A trace file (format spec: docs/checking.md) carries the
// full ScheduleCase, the recorded delay stream, and the run's delivery
// digest + event count + first violation, so a replay can prove it
// reproduced the same run and the same failure.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/protocols.h"

namespace saf::check {

/// One delay decision of the recorded run, in request order.
struct DelayRecord {
  ProcessId from = -1;
  ProcessId to = -1;
  Time at = 0;     ///< send time
  Time delay = 1;  ///< chosen delay (>= 1)

  bool operator==(const DelayRecord&) const = default;
};

using DelayTrace = std::vector<DelayRecord>;

/// Wraps a base policy, appending every decision to `out`.
class RecordingDelayPolicy final : public sim::DelayPolicy {
 public:
  RecordingDelayPolicy(std::unique_ptr<sim::DelayPolicy> base,
                       DelayTrace* out);
  Time delay(ProcessId from, ProcessId to, Time now,
             util::Rng& rng) override;

 private:
  std::unique_ptr<sim::DelayPolicy> base_;
  DelayTrace* out_;
};

/// Shared cursor/divergence state of a replay (outlives the policy,
/// which the network owns).
struct ReplayState {
  const DelayTrace* records = nullptr;
  std::size_t cursor = 0;
  bool diverged = false;
  std::string detail;  ///< first divergence, human-readable
};

/// Serves the recorded delays in request order; flags (and survives)
/// divergence instead of aborting, so the caller can report it.
class ReplayDelayPolicy final : public sim::DelayPolicy {
 public:
  explicit ReplayDelayPolicy(ReplayState* st) : st_(st) {}
  Time delay(ProcessId from, ProcessId to, Time now,
             util::Rng& rng) override;

 private:
  ReplayState* st_;
};

/// A serialized run: identity + decisions + expected observations.
struct TraceFile {
  std::string protocol;
  ScheduleCase c;
  DelayTrace delays;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  /// "invariant: detail" of the first violation; empty for clean runs.
  std::string violation;
};

/// First-violation summary in the trace file's format ("" when ok).
std::string violation_summary(const RunOutcome& out);

/// Runs `c` under `p` while recording; fills `out` completely.
RunOutcome record_case(const Protocol& p, const ScheduleCase& c,
                       TraceFile* out);

void write_trace(const TraceFile& t, std::ostream& os);
void write_trace(const TraceFile& t, const std::string& path);
/// Throws std::invalid_argument on malformed input.
TraceFile read_trace(std::istream& is);
TraceFile read_trace(const std::string& path);

struct ReplayResult {
  /// Digest, event count and violation summary all matched the trace.
  bool matched = false;
  /// The recorded delay stream diverged mid-run (nondeterminism or a
  /// trace from a different build of the protocol).
  bool diverged = false;
  std::string detail;
  RunOutcome outcome;
};

/// Re-executes the trace with its recorded delay stream and compares
/// the observed run against the recorded one. Throws
/// std::invalid_argument if the trace names an unknown protocol.
ReplayResult replay_trace(const TraceFile& t);

}  // namespace saf::check
