#include "check/fault_sweep.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "sweep/thread_pool.h"
#include "util/check.h"

namespace saf::check {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_mix_str(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Parses the verdict name written by write_fault_checkpoint.
bool parse_verdict(std::string_view name, fault::Verdict* out) {
  for (int i = 0; i < fault::kVerdictCount; ++i) {
    const auto v = static_cast<fault::Verdict>(i);
    if (fault::verdict_name(v) == name) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t FaultSweepReport::final_digest() const {
  std::uint64_t h = kFnvOffset;
  for (const FaultRunRecord& r : records) {
    if (!r.done) continue;
    h = fnv_mix(h, r.seed);
    h = fnv_mix(h, static_cast<std::uint64_t>(r.verdict));
    h = fnv_mix(h, r.digest);
    h = fnv_mix(h, r.ok ? 1 : 0);
    h = fnv_mix(h, static_cast<std::uint64_t>(r.first_broken_at));
    h = fnv_mix_str(h, r.first_broken);
  }
  return h;
}

bool FaultSweepReport::failed() const {
  return std::any_of(records.begin(), records.end(),
                     [](const FaultRunRecord& r) {
                       return r.done && fault::verdict_is_failure(r.verdict);
                     });
}

std::uint64_t fault_sweep_config_digest(const Protocol& p,
                                        const FaultSweepOptions& opt) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix_str(h, "saf-fault-sweep-v1");
  h = fnv_mix_str(h, p.name);
  h = fnv_mix(h, opt.first_seed);
  h = fnv_mix(h, static_cast<std::uint64_t>(opt.seeds));
  h = fnv_mix(h, opt.max_events);
  // The wall budget is a non-deterministic safety net; two sweeps that
  // differ only in it still produce the same records, so it is
  // deliberately NOT part of the fingerprint.
  h = fnv_mix_str(h, opt.faults_text);
  return h;
}

void write_fault_checkpoint(const FaultSweepReport& r,
                            std::uint64_t config_digest,
                            const std::string& path) {
  // Atomic persistence: write the whole file to a sibling temp path,
  // flush, then rename over the target. A crash mid-checkpoint leaves
  // either the previous complete checkpoint or a stray .tmp — never a
  // half-written file a resume could half-trust.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    util::require(os.good(), "checkpoint: cannot open " + tmp);
    os << "saf-fault-sweep-checkpoint 1\n";
    os << "protocol " << r.protocol << "\n";
    os << "config " << config_digest << "\n";
    os << "total " << r.total << "\n";
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      const FaultRunRecord& rec = r.records[i];
      if (!rec.done) continue;
      os << "run " << i << " " << rec.seed << " "
         << fault::verdict_name(rec.verdict) << " " << rec.digest << " "
         << (rec.ok ? 1 : 0) << " " << rec.first_broken_at << " "
         << (rec.first_broken.empty() ? "-" : rec.first_broken) << "\n";
    }
    os << "digest " << r.final_digest() << "\n";
    os << "end\n";
    os.flush();
    util::require(os.good(), "checkpoint: write failed for " + tmp);
  }
  util::require(std::rename(tmp.c_str(), path.c_str()) == 0,
                "checkpoint: rename " + tmp + " -> " + path + " failed");
}

void load_fault_checkpoint(FaultSweepReport& r, std::uint64_t config_digest,
                           const std::string& path) {
  std::ifstream is(path);
  util::require(is.good(), "checkpoint: cannot open " + path);
  std::string line;
  std::size_t lineno = 0;
  auto where = [&lineno] {
    return " (line " + std::to_string(lineno) + ")";
  };
  auto next = [&](const char* what) {
    ++lineno;
    util::require(static_cast<bool>(std::getline(is, line)),
                  std::string("checkpoint: truncated before ") + what +
                      where());
  };
  next("header");
  util::require(line == "saf-fault-sweep-checkpoint 1",
                "checkpoint: bad header '" + line + "'" + where());
  bool saw_end = false;
  std::uint64_t recorded_digest = 0;
  bool saw_digest = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "protocol") {
      std::string name;
      ls >> name;
      util::require(name == r.protocol,
                    "checkpoint: protocol mismatch — file has '" + name +
                        "', sweep is '" + r.protocol + "'" + where());
    } else if (key == "config") {
      std::uint64_t d = 0;
      ls >> d;
      util::require(
          d == config_digest,
          "checkpoint: config fingerprint mismatch — the checkpoint was "
          "written by a sweep with different seeds/faults/budgets; refusing "
          "to resume" +
              where());
    } else if (key == "total") {
      int total = 0;
      ls >> total;
      util::require(total == r.total,
                    "checkpoint: run-count mismatch" + where());
    } else if (key == "run") {
      std::size_t idx = 0;
      FaultRunRecord rec;
      std::string verdict, broken;
      int ok = 0;
      ls >> idx >> rec.seed >> verdict >> rec.digest >> ok >>
          rec.first_broken_at >> broken;
      util::require(!ls.fail() && idx < r.records.size(),
                    "checkpoint: garbled run record '" + line + "'" +
                        where());
      util::require(parse_verdict(verdict, &rec.verdict),
                    "checkpoint: unknown verdict '" + verdict + "'" +
                        where());
      rec.ok = ok != 0;
      if (broken != "-") rec.first_broken = broken;
      rec.done = true;
      r.records[idx] = std::move(rec);
    } else if (key == "digest") {
      ls >> recorded_digest;
      saw_digest = true;
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      throw std::invalid_argument("checkpoint: unknown key '" + key + "'" +
                                  where());
    }
    util::require(!ls.fail(),
                  "checkpoint: malformed line '" + line + "'" + where());
  }
  util::require(saw_end, "checkpoint: truncated — missing 'end' marker");
  util::require(saw_digest, "checkpoint: missing digest line");
  // Digest continuity: the loaded records must reproduce the digest the
  // writer computed, or the file was tampered with / mis-merged.
  util::require(r.final_digest() == recorded_digest,
                "checkpoint: digest mismatch — records do not reproduce the "
                "recorded final digest");
  for (const FaultRunRecord& rec : r.records) {
    if (rec.done) ++r.resumed;
  }
}

FaultSweepReport fault_sweep(const Protocol& p, const FaultSweepOptions& opt) {
  util::require(opt.seeds >= 0, "fault_sweep: negative seed count");
  util::require(opt.checkpoint_every > 0,
                "fault_sweep: checkpoint_every must be positive");
  FaultSweepReport report;
  report.protocol = p.name;
  report.total = opt.seeds;
  report.records.assign(static_cast<std::size_t>(opt.seeds), {});
  const std::uint64_t config = fault_sweep_config_digest(p, opt);
  if (opt.resume) {
    util::require(!opt.checkpoint_path.empty(),
                  "fault_sweep: --resume needs a checkpoint path");
    load_fault_checkpoint(report, config, opt.checkpoint_path);
  }

  // The pending indices, chunked so the sweep can checkpoint and honor
  // the stop flag between chunks without a seam in the records.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (!report.records[i].done) todo.push_back(i);
  }

  sweep::ThreadPool pool(opt.jobs);
  RunContext ctx;
  ctx.faults = opt.faults;
  ctx.max_events = opt.max_events;
  ctx.wall_budget_ms = opt.wall_budget_ms;

  std::size_t cursor = 0;
  int since_checkpoint = 0;
  while (cursor < todo.size()) {
    if (opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed)) {
      report.interrupted = true;
      break;
    }
    const std::size_t chunk =
        std::min<std::size_t>(static_cast<std::size_t>(opt.checkpoint_every),
                              todo.size() - cursor);
    pool.parallel_for(chunk, [&](std::size_t j) {
      const std::size_t idx = todo[cursor + j];
      const ScheduleCase c = generate_case(
          p, opt.first_seed + static_cast<std::uint64_t>(idx));
      FaultRunRecord rec;
      rec.seed = c.seed;
      // Quarantine: a throwing run is a WORKER_ERROR record; siblings
      // in the chunk (and every later chunk) are unaffected.
      try {
        const RunOutcome out = p.run(c, ctx);
        rec.verdict = out.verdict;
        rec.digest = out.digest;
        rec.ok = out.ok;
        rec.first_broken = out.first_broken;
        rec.first_broken_at = out.first_broken_at;
      } catch (const std::exception& e) {
        rec.verdict = fault::Verdict::kWorkerError;
        rec.ok = false;
        rec.first_broken = "worker.exception";
        rec.first_broken_at = kNeverTime;
        (void)e;
      }
      rec.done = true;
      report.records[idx] = std::move(rec);
    });
    cursor += chunk;
    since_checkpoint += static_cast<int>(chunk);
    if (!opt.checkpoint_path.empty() &&
        (since_checkpoint >= opt.checkpoint_every || cursor == todo.size())) {
      write_fault_checkpoint(report, config, opt.checkpoint_path);
      since_checkpoint = 0;
    }
  }
  if (report.interrupted && !opt.checkpoint_path.empty()) {
    write_fault_checkpoint(report, config, opt.checkpoint_path);
  }

  for (const FaultRunRecord& rec : report.records) {
    if (!rec.done) continue;
    ++report.completed;
    ++report.verdicts[static_cast<std::size_t>(rec.verdict)];
  }
  return report;
}

}  // namespace saf::check
