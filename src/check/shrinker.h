// Counterexample shrinking (delta debugging over schedule space).
//
// A violation found by the explorer typically carries incidental
// complexity: crash events that play no role, an exotic delay adversary
// when a plain uniform one fails too, adversarial windows far longer
// than needed. The shrinker minimizes the (seed, crash plan, delay
// schedule) triple by repeatedly proposing simpler candidates and
// keeping any that still violate the SAME invariant — the classic
// ddmin loop, specialized to this domain:
//
//   1. drop crash entries one at a time (plans are small, so the
//      linear pass is the whole of ddmin's subset phase);
//   2. simplify the delay adversary down the ladder
//      bias -> uniform[1,10] -> fixed delay 1;
//   3. halve the adversarial window (release / slow band / epoch) and
//      round time-triggered crashes toward 0.
//
// The result is a small reproducer suitable for a regression test.
#pragma once

#include <cstdint>
#include <string>

#include "check/explorer.h"

namespace saf::check {

struct ShrinkOptions {
  /// Budget of protocol executions spent shrinking.
  int max_runs = 200;
  /// Keep a candidate only if it violates the same invariant name as
  /// the original failure (prevents shrinking into a different bug).
  bool same_invariant = true;
};

struct ShrinkResult {
  ScheduleCase minimized;
  /// Outcome of the minimized case (still failing).
  RunOutcome outcome;
  int runs = 0;             ///< executions spent
  int removed_crashes = 0;  ///< crash entries dropped
  bool adversary_simplified = false;
};

/// Minimizes `failing` (which must violate at least one invariant of
/// `p`; throws std::invalid_argument otherwise).
ShrinkResult shrink(const Protocol& p, const ScheduleCase& failing,
                    const ShrinkOptions& opt = {});

}  // namespace saf::check
