// Biased adversarial delay policies for schedule exploration.
//
// A uniform random sweep concentrates probability mass on "friendly"
// schedules; the interesting corners of schedule space (a starved
// region that looks crashed, deliveries bunched together after a long
// silence, fast/slow oscillation) need deliberately biased adversaries.
// An AdversarySpec is a small, serializable description of one such
// policy — serializable so a failing (seed, crash plan, adversary)
// triple can be written to a trace file and replayed (check/replay.h).
//
// Every adversary preserves the asynchronous model's one obligation:
// delays are finite (and >= 1), so protocol liveness properties remain
// checkable against a sufficiently distant horizon.
#pragma once

#include <memory>
#include <string>

#include "sim/delay_policy.h"
#include "util/types.h"

namespace saf::check {

enum class AdversaryKind {
  kUniform,      ///< uniform [lo, hi] — the unbiased baseline
  kStarvation,   ///< messages FROM `victims` held back until `release`
  kNearHorizon,  ///< all early sends bunched to arrive around `release`
  kBursty,       ///< alternating fast/slow delay epochs of length `epoch`
};

struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::kUniform;
  Time lo = 1;   ///< baseline delay band, applied outside the attack
  Time hi = 10;
  ProcSet victims;        ///< starved senders (kStarvation)
  Time release = 0;       ///< end of the adversarial window
  Time slow_lo = 40;      ///< slow-epoch band (kBursty)
  Time slow_hi = 160;
  Time epoch = 64;        ///< epoch length (kBursty)

  bool operator==(const AdversarySpec&) const = default;

  /// One-line token form, e.g. "starvation victims=0x15 release=1500
  /// lo=1 hi=10" (the trace-file representation, docs/checking.md).
  std::string to_string() const;
  /// Inverse of to_string(); throws std::invalid_argument on bad input.
  static AdversarySpec parse(const std::string& line);
};

/// Builds the delay policy an AdversarySpec describes. Deterministic:
/// all randomness comes from the network's seeded stream at delay time.
std::unique_ptr<sim::DelayPolicy> make_delay_policy(const AdversarySpec& a);

}  // namespace saf::check
