// The self-healing fault-injected sweep (docs/fault_injection.md).
//
// A fault sweep runs `seeds` generated cases of one protocol under a
// FaultSpec, stamping every run with a model-compliance verdict
// (fault/verdict.h). It is built to survive the runs it provokes:
//
//   * watchdog — per-run event / wall-clock budgets turn a hung run
//     into a TIMED_OUT record instead of a hung sweep;
//   * quarantine — a run that throws becomes a WORKER_ERROR record; the
//     sweep continues and the report (not the process) carries the
//     failure;
//   * checkpoint/resume — with a checkpoint path set, the sweep
//     atomically (write-to-temp + rename) persists completed records
//     every `checkpoint_every` runs and at every stop; a resumed sweep
//     skips completed seeds and MUST converge to the byte-identical
//     final digest, asserted by the config fingerprint in the file.
//
// Records are index-addressed, so the report — including the
// order-sensitive final digest — is a pure function of (protocol,
// options), independent of jobs, interruptions and resume splits.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "check/protocols.h"

namespace saf::check {

struct FaultSweepOptions {
  std::uint64_t first_seed = 1;
  int seeds = 500;
  /// Worker threads; <= 0 picks hardware concurrency.
  int jobs = 1;
  /// Fault spec injected into every run; null sweeps the clean model
  /// (the verdicts then stay in the in-model pair).
  const fault::FaultSpec* faults = nullptr;
  /// Text the spec was parsed from — fingerprinted into the checkpoint
  /// so a resume under a different spec is refused, not merged.
  std::string faults_text;
  /// Per-run watchdog budgets (0 = off). max_events is deterministic;
  /// wall_budget_ms is a non-reproducible safety net.
  std::uint64_t max_events = 0;
  std::int64_t wall_budget_ms = 0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Load `checkpoint_path` first and skip the seeds it records.
  bool resume = false;
  /// Persist after every this many newly completed runs.
  int checkpoint_every = 64;
  /// Cooperative stop flag (SIGTERM handler): checked between chunks;
  /// when set the sweep checkpoints what it has and returns with
  /// interrupted == true. May be null.
  const std::atomic<bool>* stop = nullptr;
};

/// One completed run, as persisted in the checkpoint.
struct FaultRunRecord {
  bool done = false;  ///< false = not yet run (resume hole / interrupt)
  std::uint64_t seed = 0;
  fault::Verdict verdict = fault::Verdict::kSafeInModel;
  std::uint64_t digest = 0;
  bool ok = true;
  std::string first_broken;       ///< first broken assumption id
  Time first_broken_at = kNeverTime;
};

struct FaultSweepReport {
  std::string protocol;
  int total = 0;      ///< seeds requested
  int completed = 0;  ///< records with done == true
  int resumed = 0;    ///< records loaded from the checkpoint
  bool interrupted = false;  ///< the stop flag ended the sweep early
  std::vector<FaultRunRecord> records;  ///< index order, size == total
  std::array<int, fault::kVerdictCount> verdicts{};

  int verdict_count(fault::Verdict v) const {
    return verdicts[static_cast<std::size_t>(v)];
  }
  /// Order-sensitive FNV-1a over the completed records (seed, verdict,
  /// digest, ok, first_broken_at) in index order — the continuity pin a
  /// resumed sweep must reproduce byte-for-byte.
  std::uint64_t final_digest() const;
  /// True iff any record carries a failure verdict (VIOLATION_IN_MODEL
  /// or WORKER_ERROR) — the sweep's exit-nonzero condition.
  bool failed() const;
};

/// Fingerprint of everything that determines the record sequence; a
/// checkpoint only resumes against an identical fingerprint.
std::uint64_t fault_sweep_config_digest(const Protocol& p,
                                        const FaultSweepOptions& opt);

/// Runs (or resumes) the sweep. Throws std::invalid_argument on a
/// malformed / mismatching checkpoint; never throws for a failing run —
/// those are quarantined into WORKER_ERROR records.
FaultSweepReport fault_sweep(const Protocol& p, const FaultSweepOptions& opt);

/// Atomically persists the completed records (write temp + rename).
void write_fault_checkpoint(const FaultSweepReport& r,
                            std::uint64_t config_digest,
                            const std::string& path);

/// Loads a checkpoint into `r` (records + resumed count); throws
/// std::invalid_argument on a garbled file or a config mismatch.
void load_fault_checkpoint(FaultSweepReport& r, std::uint64_t config_digest,
                           const std::string& path);

}  // namespace saf::check
