#include "check/shrinker.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace saf::check {

namespace {

/// The invariant identity a shrink step must preserve.
std::string first_invariant(const RunOutcome& out) {
  return out.violations.empty() ? std::string() : out.violations[0].invariant;
}

sim::CrashPlan without_entry(const sim::CrashPlan& plan, std::size_t skip) {
  sim::CrashPlan out;
  const auto& entries = plan.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == skip) continue;
    const sim::CrashEntry& e = entries[i];
    if (e.send_trigger) {
      out.crash_after_sends(e.pid, *e.send_trigger);
    } else {
      out.crash_at(e.pid, e.at_time);
    }
  }
  return out;
}

sim::CrashPlan with_halved_times(const sim::CrashPlan& plan, bool* changed) {
  sim::CrashPlan out;
  for (const sim::CrashEntry& e : plan.entries()) {
    if (e.send_trigger) {
      out.crash_after_sends(e.pid, *e.send_trigger);
    } else {
      if (e.at_time > 0) *changed = true;
      out.crash_at(e.pid, e.at_time / 2);
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const Protocol& p, const ScheduleCase& failing,
                    const ShrinkOptions& opt) {
  ShrinkResult res;
  res.minimized = failing;
  res.outcome = run_case(p, failing);
  ++res.runs;
  util::require(!res.outcome.ok,
                "shrink: the given case does not violate any invariant");
  const std::string target = first_invariant(res.outcome);

  // Proposes `cand`; adopts it (and returns true) if it still fails the
  // preserved invariant within budget.
  auto try_adopt = [&](const ScheduleCase& cand) {
    if (res.runs >= opt.max_runs) return false;
    RunOutcome out = run_case(p, cand);
    ++res.runs;
    if (out.ok) return false;
    if (opt.same_invariant && first_invariant(out) != target) return false;
    res.minimized = cand;
    res.outcome = std::move(out);
    return true;
  };

  bool changed = true;
  while (changed && res.runs < opt.max_runs) {
    changed = false;

    // 1. Drop crash entries, one at a time.
    for (std::size_t i = 0; i < res.minimized.crashes.entries().size();) {
      ScheduleCase cand = res.minimized;
      cand.crashes = without_entry(res.minimized.crashes, i);
      if (try_adopt(cand)) {
        ++res.removed_crashes;
        changed = true;
        // entry i removed: the next candidate re-uses index i.
      } else {
        ++i;
      }
    }

    // 2. Adversary ladder: bias -> uniform[1,10] -> fixed 1.
    if (res.minimized.adversary.kind != AdversaryKind::kUniform) {
      ScheduleCase cand = res.minimized;
      cand.adversary = AdversarySpec{};  // uniform [1, 10]
      if (try_adopt(cand)) {
        res.adversary_simplified = true;
        changed = true;
      }
    } else if (res.minimized.adversary.lo != res.minimized.adversary.hi) {
      ScheduleCase cand = res.minimized;
      cand.adversary.lo = cand.adversary.hi = 1;
      if (try_adopt(cand)) {
        res.adversary_simplified = true;
        changed = true;
      }
    }

    // 3. Halve the adversarial window.
    if (res.minimized.adversary.release > 0) {
      ScheduleCase cand = res.minimized;
      cand.adversary.release /= 2;
      if (try_adopt(cand)) changed = true;
    }
    if (res.minimized.adversary.kind == AdversaryKind::kBursty &&
        res.minimized.adversary.slow_hi > res.minimized.adversary.slow_lo) {
      ScheduleCase cand = res.minimized;
      cand.adversary.slow_hi =
          std::max(cand.adversary.slow_lo, cand.adversary.slow_hi / 2);
      if (try_adopt(cand)) changed = true;
    }

    // 4. Round time-triggered crashes toward 0 (earlier crashes are
    // simpler to reason about: the process might as well never start).
    {
      bool times_changed = false;
      ScheduleCase cand = res.minimized;
      cand.crashes = with_halved_times(res.minimized.crashes, &times_changed);
      if (times_changed && try_adopt(cand)) changed = true;
    }
  }
  return res;
}

}  // namespace saf::check
