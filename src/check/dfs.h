// Bounded-DFS enumeration of delivery interleavings, with optional
// state-space reductions.
//
// Random sweeps sample schedule space; for small instances (n <= 4 on
// the Fig 3 k-set algorithm) the space of *delivery orders* can be
// enumerated outright, in the spirit of TLA-style exhaustive model
// checking. Two notions of "choice point" are supported:
//
//   * kDelayMenu (the original mode): each of the first `depth` delay
//     requests picks from a small delay menu; the tree has
//     |menu|^depth leaves.
//   * kDispatchOrder: delays are fixed and each of the first `depth`
//     same-instant delivery races picks which pending delivery
//     dispatches next — the direct adversary over message order.
//
// The explorer walks the choice tree depth-first with a replaying
// odometer over the choice stack, running the full simulation at every
// leaf and evaluating the protocol's invariants. Three reductions
// prune the walk without changing the verdict or the set of distinct
// terminal decisions (tests/test_dfs_reduction.cpp pins this
// differentially; docs/exhaustive_checking.md has the soundness
// arguments):
//
//   * state_hash — canonical state fingerprints
//     (Simulator::state_digest) feed a visited set; a subtree is
//     skipped when its root state was already fully explored with at
//     least as much remaining depth.
//   * symmetry — fingerprints are canonicalized under the protocol's
//     process-relabeling group (Protocol::sym_signatures), merging
//     runs that differ only by a renaming of indistinguishable
//     processes.
//   * por — persistent-set partial-order reduction: at a delivery
//     race, only orderings of deliveries to one receiver are explored
//     when deliveries to distinct receivers provably commute.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "check/explorer.h"

namespace saf::check {

/// What a choice point is (see the header comment).
enum class DfsMode {
  kDelayMenu,
  /// Requires the protocol to thread RunContext::on_simulator (the
  /// built-in kset / two-wheels harnesses do).
  kDispatchOrder,
};

struct DfsOptions {
  /// Number of leading choice points explored; deeper choices take the
  /// default branch (first menu entry / queue order).
  int depth = 10;
  /// Candidate delays per choice point in kDelayMenu mode. Two
  /// well-separated values are enough to flip delivery orders.
  std::vector<Time> menu = {1, 6};
  /// Hard cap on executed runs (a guard, not a sampling knob: if it
  /// binds, `exhausted` is false).
  std::uint64_t max_runs = 1u << 14;
  DfsMode mode = DfsMode::kDelayMenu;
  /// Visited-state pruning on canonical state fingerprints.
  bool state_hash = false;
  /// Canonicalize fingerprints under the protocol's symmetry group
  /// (enables the visited set even without state_hash).
  bool symmetry = false;
  /// Persistent-set partial-order reduction (implies kDispatchOrder).
  bool por = false;
  /// Fixed message delay in kDispatchOrder mode.
  Time step_delay = 1;
  /// Wall-clock budget for the whole search in milliseconds (0 =
  /// unlimited). When it binds, `exhausted` stays false. NOT
  /// deterministic — use max_runs for reproducible truncation.
  std::int64_t wall_budget_ms = 0;
};

/// Reduction-effectiveness counters for one search (the --dfs-stats
/// JSON mirrors these; see docs/exhaustive_checking.md for the schema).
struct DfsStats {
  std::uint64_t choice_points = 0;  ///< branch points hit (incl. replays)
  std::uint64_t race_points = 0;    ///< dispatch-order races consulted
  std::uint64_t states_hashed = 0;  ///< canonical digests computed
  std::uint64_t distinct_states = 0;
  std::uint64_t hash_prunes = 0;    ///< subtrees skipped via the visited set
  std::uint64_t sym_canonical_hits = 0;  ///< states where a relabeling won
  std::uint64_t por_points = 0;          ///< races where ample < full
  std::uint64_t por_branches_saved = 0;  ///< deferred race alternatives
  std::size_t group_size = 1;  ///< symmetry group order (1 = identity)
  int max_depth_used = 0;      ///< deepest choice point actually branched
  std::int64_t wall_ms = 0;
  double runs_per_sec = 0.0;
};

struct DfsReport {
  std::uint64_t runs = 0;
  bool exhausted = false;  ///< the whole (reduced) choice tree was enumerated
  std::uint64_t distinct_digests = 0;
  std::vector<Violation> violations;
  /// Distinct terminal decision multisets (each leaf's decisions,
  /// sorted): the reduction-invariant observable the differential
  /// equivalence tests pin.
  std::set<std::vector<std::int64_t>> decision_sets;
  DfsStats stats;

  bool clean() const { return violations.empty(); }
};

/// Exhaustively enumerates interleavings of `base` under `p`. The
/// case's adversary spec is ignored — the choice tree IS the adversary.
DfsReport explore_interleavings(const Protocol& p, const ScheduleCase& base,
                                const DfsOptions& opt = {});

}  // namespace saf::check
