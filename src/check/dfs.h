// Bounded-DFS enumeration of delivery interleavings.
//
// Random sweeps sample schedule space; for small instances (n <= 4 on
// the Fig 3 k-set algorithm) the space of *delivery orders* induced by
// the first few messages can be enumerated outright, in the spirit of
// TLA-style exhaustive model checking. Each of the first `depth`
// delay requests becomes a choice point over a small delay menu; the
// explorer walks the resulting choice tree depth-first with an
// odometer over the choice stack, running the full simulation at every
// leaf and evaluating the protocol's invariants. Distinct delivery
// digests count how many genuinely different event orders were
// reached.
#pragma once

#include <cstdint>
#include <vector>

#include "check/explorer.h"

namespace saf::check {

struct DfsOptions {
  /// Number of leading delay requests treated as choice points; the
  /// tree has |menu|^depth leaves.
  int depth = 10;
  /// Candidate delays per choice point. Two well-separated values are
  /// enough to flip delivery orders.
  std::vector<Time> menu = {1, 6};
  /// Hard cap on executed runs (a guard, not a sampling knob: if it
  /// binds, `exhausted` is false).
  std::uint64_t max_runs = 1u << 14;
};

struct DfsReport {
  std::uint64_t runs = 0;
  bool exhausted = false;  ///< the whole choice tree was enumerated
  std::uint64_t distinct_digests = 0;
  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
};

/// Exhaustively enumerates interleavings of `base` under `p`. The
/// case's adversary spec is ignored — the choice tree IS the adversary;
/// delays beyond `depth` take the menu's first entry.
DfsReport explore_interleavings(const Protocol& p, const ScheduleCase& base,
                                const DfsOptions& opt = {});

}  // namespace saf::check
