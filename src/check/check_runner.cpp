// check_runner — the schedule-exploration CLI (docs/checking.md).
//
//   check_runner --seeds 1000                          # sweep all protocols
//   check_runner --protocol kset,two-wheels --seeds 500 --jobs 4
//   check_runner --protocol kset --seeds 1000 --shrink --record out
//   check_runner --protocol kset-small --dfs --dfs-depth 10
//   check_runner --replay out-kset-42.trace
//   check_runner --seeds 200 --trace bug         # structured trace per violation
//   check_runner --seeds 50 --metrics m.json     # per-protocol run metrics
//   check_runner --seeds 200 --faults lossy30    # fault-injected sweep
//   check_runner --faults "drop=0.3,flap@400/60" --max-events 2000000
//
// Under --faults every run carries a model-compliance verdict
// (docs/fault_injection.md) and the per-protocol verdict histogram is
// printed; only VIOLATION_IN_MODEL / WORKER_ERROR fail the sweep.
//
// Exit status: 0 clean (or replay matched), 1 violations found (or
// replay mismatched), 2 usage error.
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "check/dfs.h"
#include "check/explorer.h"
#include "check/replay.h"
#include "check/shrinker.h"
#include "fault/fault_spec.h"
#include "sweep/bench_json.h"
#include "sweep/thread_pool.h"
#include "trace/trace.h"

namespace {

using namespace saf;
using namespace saf::check;

struct Args {
  std::vector<std::string> protocols;  // empty = the three paper pillars
  std::uint64_t first_seed = 1;
  int seeds = 100;
  int jobs = 0;  // 0 = hardware concurrency; report is jobs-invariant
  bool shrink = false;
  bool dfs = false;
  int dfs_depth = 10;
  std::string dfs_mode = "menu";  // menu | race
  bool dfs_hash = false;
  bool dfs_symmetry = false;
  bool dfs_por = false;
  std::string dfs_stats_path;  // write per-protocol search stats as JSON
  std::string record_prefix;  // write a trace per violation when set
  std::string replay_path;
  std::string trace_prefix;   // write a structured JSONL trace per violation
  std::string metrics_path;   // write per-protocol run metrics as JSON
  std::string faults;         // named profile or inline fault spec
  std::uint64_t max_events = 0;      // per-run event watchdog (0 = off)
  std::int64_t wall_budget_ms = 0;   // per-run wall-clock watchdog (0 = off)
  bool list = false;
};

void print_usage(std::ostream& os) {
  os <<
      "usage: check_runner [--protocol a,b,...] [--seeds N] [--first-seed S]\n"
      "                    [--jobs N] [--shrink] [--record PREFIX]\n"
      "                    [--dfs] [--dfs-depth D] [--dfs-mode menu|race]\n"
      "                    [--dfs-hash] [--dfs-symmetry] [--dfs-por]\n"
      "                    [--dfs-stats FILE]\n"
      "                    [--trace PREFIX] [--metrics FILE]\n"
      "                    [--faults PROFILE|SPEC] [--max-events N]\n"
      "                    [--wall-budget-ms N]\n"
      "                    [--replay FILE] [--list] [--help]\n"
      "fault profiles:";
  for (const auto name : saf::fault::profile_names()) os << " " << name;
  os << "\n(or an inline spec, e.g. \"drop=0.3,dup=0.1,flap@400/60\")\n";
}

int usage(const std::string& err = "") {
  if (!err.empty()) std::cerr << "check_runner: " << err << "\n";
  print_usage(std::cerr);
  return 2;
}

// Strict decimal parse; returns false (with a message) on anything stoi
// would throw on or silently truncate ("banana", "10x", out-of-range).
template <typename Int>
bool parse_int(const char* flag, const char* v, Int lo, Int* out) {
  errno = 0;
  char* end = nullptr;
  const long long raw = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      std::cmp_less(raw, lo) ||
      std::cmp_greater(raw, std::numeric_limits<Int>::max())) {
    std::cerr << "check_runner: " << flag << " expects an integer >= " << lo
              << ", got '" << v << "'\n";
    return false;
  }
  *out = static_cast<Int>(raw);
  return true;
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "check_runner: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      const char* v = value("--protocol");
      if (v == nullptr) return false;
      std::string cur;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!cur.empty()) a->protocols.push_back(cur);
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur += *p;
        }
      }
    } else if (arg == "--seeds") {
      const char* v = value("--seeds");
      if (v == nullptr || !parse_int("--seeds", v, 1, &a->seeds)) return false;
    } else if (arg == "--first-seed") {
      const char* v = value("--first-seed");
      if (v == nullptr ||
          !parse_int("--first-seed", v, std::uint64_t{0}, &a->first_seed)) {
        return false;
      }
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (v == nullptr || !parse_int("--jobs", v, 1, &a->jobs)) return false;
    } else if (arg == "--shrink") {
      a->shrink = true;
    } else if (arg == "--dfs") {
      a->dfs = true;
    } else if (arg == "--dfs-depth") {
      const char* v = value("--dfs-depth");
      if (v == nullptr || !parse_int("--dfs-depth", v, 1, &a->dfs_depth)) {
        return false;
      }
    } else if (arg == "--dfs-mode") {
      const char* v = value("--dfs-mode");
      if (v == nullptr) return false;
      a->dfs_mode = v;
      if (a->dfs_mode != "menu" && a->dfs_mode != "race") {
        std::cerr << "check_runner: --dfs-mode expects 'menu' or 'race', got '"
                  << v << "'\n";
        return false;
      }
    } else if (arg == "--dfs-hash") {
      a->dfs_hash = true;
    } else if (arg == "--dfs-symmetry") {
      a->dfs_symmetry = true;
    } else if (arg == "--dfs-por") {
      a->dfs_por = true;
    } else if (arg == "--dfs-stats") {
      const char* v = value("--dfs-stats");
      if (v == nullptr) return false;
      a->dfs_stats_path = v;
    } else if (arg == "--record") {
      const char* v = value("--record");
      if (v == nullptr) return false;
      a->record_prefix = v;
    } else if (arg == "--replay") {
      const char* v = value("--replay");
      if (v == nullptr) return false;
      a->replay_path = v;
    } else if (arg == "--trace") {
      const char* v = value("--trace");
      if (v == nullptr) return false;
      a->trace_prefix = v;
    } else if (arg == "--metrics") {
      const char* v = value("--metrics");
      if (v == nullptr) return false;
      a->metrics_path = v;
    } else if (arg == "--faults") {
      const char* v = value("--faults");
      if (v == nullptr) return false;
      a->faults = v;
    } else if (arg == "--max-events") {
      const char* v = value("--max-events");
      if (v == nullptr ||
          !parse_int("--max-events", v, std::uint64_t{1}, &a->max_events)) {
        return false;
      }
    } else if (arg == "--wall-budget-ms") {
      const char* v = value("--wall-budget-ms");
      if (v == nullptr ||
          !parse_int("--wall-budget-ms", v, std::int64_t{1},
                     &a->wall_budget_ms)) {
        return false;
      }
    } else if (arg == "--list") {
      a->list = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "check_runner: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

void print_violation(const Protocol& p, const Violation& v) {
  std::cout << "  " << saf::fault::verdict_name(v.outcome.verdict) << " ["
            << p.name << "] " << describe_case(v.c) << "\n";
  if (!v.outcome.first_broken.empty()) {
    std::cout << "    first broken assumption: " << v.outcome.first_broken
              << " at t=" << v.outcome.first_broken_at << "\n";
  }
  for (const auto& iv : v.outcome.violations) {
    std::cout << "    " << iv.invariant << ": " << iv.detail << "\n";
  }
}

void print_verdicts(const ExploreReport& report) {
  std::cout << "  verdicts:";
  for (int i = 0; i < saf::fault::kVerdictCount; ++i) {
    const auto v = static_cast<saf::fault::Verdict>(i);
    if (report.verdict_count(v) == 0) continue;
    std::cout << " " << saf::fault::verdict_name(v) << "="
              << report.verdict_count(v);
  }
  std::cout << "\n";
}

/// Shrinks (optionally) and records (optionally) one violation;
/// verifies the recorded trace replays to the identical failure.
void postprocess_violation(const Args& args, const Protocol& p,
                           const Violation& v) {
  ScheduleCase repro = v.c;
  if (args.shrink) {
    const ShrinkResult s = shrink(p, v.c);
    repro = s.minimized;
    std::cout << "    shrunk in " << s.runs << " runs: "
              << describe_case(s.minimized)
              << " (dropped " << s.removed_crashes << " crash events"
              << (s.adversary_simplified ? ", simplified adversary" : "")
              << ")\n";
  }
  if (!args.record_prefix.empty()) {
    TraceFile trace;
    record_case(p, repro, &trace);
    const std::string path = args.record_prefix + "-" + p.name + "-" +
                             std::to_string(repro.seed) + ".trace";
    write_trace(trace, path);
    const ReplayResult r = replay_trace(trace);
    std::cout << "    recorded " << path << " (" << trace.delays.size()
              << " delays); replay: " << r.detail << "\n";
  }
  if (!args.trace_prefix.empty()) {
    // Deterministic re-run of the (possibly shrunk) failing case with
    // the structured trace on: same seed, same crash plan, same
    // adversary — the JSONL file IS the failing schedule.
    const std::string path = args.trace_prefix + "-" + p.name + "-" +
                             std::to_string(repro.seed) + ".trace.jsonl";
    std::ofstream os(path);
    if (!os) {
      std::cout << "    cannot write " << path << "\n";
      return;
    }
    os << "# " << p.name << " " << describe_case(repro) << "\n";
    saf::trace::JsonlSink sink(os);
    RunContext ctx;
    ctx.trace_sink = &sink;
    p.run(repro, ctx);
    std::cout << "    structured trace " << path << "\n";
  }
}

/// One protocol's search result in the --dfs-stats JSON
/// (schema saf-dfs-stats-v1; see docs/exhaustive_checking.md).
void dfs_stats_json(saf::sweep::JsonWriter& w, const Args& args,
                    const DfsOptions& opt, const DfsReport& r) {
  w.begin_object();
  w.key("mode").value(args.dfs_mode);
  w.key("depth").value(opt.depth);
  w.key("hash").value(opt.state_hash);
  w.key("symmetry").value(opt.symmetry);
  w.key("por").value(opt.por);
  w.key("runs").value(r.runs);
  w.key("exhausted").value(r.exhausted);
  w.key("violations").value(static_cast<std::uint64_t>(r.violations.size()));
  w.key("distinct_delivery_orders").value(r.distinct_digests);
  w.key("decision_sets")
      .value(static_cast<std::uint64_t>(r.decision_sets.size()));
  w.key("choice_points").value(r.stats.choice_points);
  w.key("race_points").value(r.stats.race_points);
  w.key("states_hashed").value(r.stats.states_hashed);
  w.key("distinct_states").value(r.stats.distinct_states);
  w.key("hash_prunes").value(r.stats.hash_prunes);
  w.key("sym_canonical_hits").value(r.stats.sym_canonical_hits);
  w.key("por_points").value(r.stats.por_points);
  w.key("por_branches_saved").value(r.stats.por_branches_saved);
  w.key("group_size").value(static_cast<std::uint64_t>(r.stats.group_size));
  w.key("max_depth_used").value(r.stats.max_depth_used);
  w.key("wall_ms").value(r.stats.wall_ms);
  w.key("runs_per_sec").value(r.stats.runs_per_sec);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();

  if (args.list) {
    for (const std::string& name : protocol_names()) {
      const Protocol* p = find_protocol(name);
      std::cout << name << " (n=" << p->n << ", t=" << p->t
                << ", horizon=" << p->horizon << ")\n";
    }
    return 0;
  }

  if (!args.replay_path.empty()) {
    try {
      const TraceFile trace = read_trace(args.replay_path);
      const ReplayResult r = replay_trace(trace);
      std::cout << "replay " << args.replay_path << " [" << trace.protocol
                << "] " << describe_case(trace.c) << "\n  " << r.detail
                << "\n";
      return r.matched ? 0 : 1;
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }

  if (args.protocols.empty()) {
    args.protocols = {"kset", "two-wheels", "phibar"};
  }

  saf::fault::FaultSpec fault_spec;
  const bool faulted = !args.faults.empty();
  if (faulted) {
    try {
      fault_spec = saf::fault::parse_fault_spec(args.faults);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    std::cout << "fault spec: " << fault_spec.name << "\n";
  }

  bool any_violation = false;
  saf::sweep::JsonWriter stats_json;
  if (args.dfs && !args.dfs_stats_path.empty()) {
    stats_json.begin_object();
    stats_json.key("schema").value("saf-dfs-stats-v1");
    stats_json.key("protocols").begin_object();
  }
  for (const std::string& name : args.protocols) {
    const Protocol* p = find_protocol(name);
    if (p == nullptr) return usage("unknown protocol '" + name + "'");

    if (args.dfs) {
      DfsOptions opt;
      opt.depth = args.dfs_depth;
      opt.mode = args.dfs_mode == "race" ? DfsMode::kDispatchOrder
                                         : DfsMode::kDelayMenu;
      opt.state_hash = args.dfs_hash;
      opt.symmetry = args.dfs_symmetry;
      opt.por = args.dfs_por;
      opt.wall_budget_ms = args.wall_budget_ms;
      const DfsReport report = explore_interleavings(*p, ScheduleCase{}, opt);
      std::cout << "[" << name << "] dfs depth=" << args.dfs_depth << ": "
                << report.runs << " runs"
                << (report.exhausted ? " (exhausted)" : " (capped)") << ", "
                << report.distinct_digests << " distinct delivery orders, "
                << report.violations.size() << " violations\n";
      if (args.dfs_hash || args.dfs_symmetry || args.dfs_por) {
        std::cout << "  reductions: " << report.stats.distinct_states
                  << " distinct states, " << report.stats.hash_prunes
                  << " hash prunes, " << report.stats.sym_canonical_hits
                  << " symmetry hits (group=" << report.stats.group_size
                  << "), " << report.stats.por_branches_saved
                  << " race branches deferred, " << report.stats.wall_ms
                  << " ms\n";
      }
      if (!args.dfs_stats_path.empty()) {
        stats_json.key(name);
        dfs_stats_json(stats_json, args, opt, report);
      }
      for (const Violation& v : report.violations) print_violation(*p, v);
      any_violation |= !report.clean();
      continue;
    }

    ExploreOptions opt;
    opt.first_seed = args.first_seed;
    opt.seeds = args.seeds;
    opt.jobs = args.jobs > 0 ? args.jobs : sweep::ThreadPool::default_jobs();
    opt.faults = faulted ? &fault_spec : nullptr;
    opt.max_events = args.max_events;
    opt.wall_budget_ms = args.wall_budget_ms;
    const ExploreReport report = explore(*p, opt);
    std::cout << "[" << name << "] " << report.runs << " runs (seeds "
              << args.first_seed << ".."
              << args.first_seed + static_cast<std::uint64_t>(args.seeds) - 1
              << "): " << report.violations.size() << " failures\n";
    if (faulted || args.max_events > 0 || args.wall_budget_ms > 0) {
      print_verdicts(report);
    }
    for (const Violation& v : report.violations) {
      print_violation(*p, v);
      try {
        postprocess_violation(args, *p, v);
      } catch (const std::exception& e) {
        std::cout << "    postprocess failed: " << e.what() << "\n";
      }
    }
    any_violation |= !report.clean();
  }

  if (args.dfs && !args.dfs_stats_path.empty()) {
    stats_json.end_object();  // protocols
    stats_json.end_object();
    saf::sweep::write_file(args.dfs_stats_path, stats_json.str());
    std::cout << "dfs stats written to " << args.dfs_stats_path << "\n";
  }

  if (!args.metrics_path.empty()) {
    // One canonical serial run per protocol with the metrics registry
    // installed (metering every sweep run would perturb the parallel
    // hot path; one deterministic run per protocol is the health probe).
    std::ofstream os(args.metrics_path);
    if (!os) return usage("cannot write " + args.metrics_path);
    os << "{\"schema\":\"saf-metrics-v1\",\"protocols\":{";
    bool first = true;
    for (const std::string& name : args.protocols) {
      const Protocol* p = find_protocol(name);
      saf::trace::MetricsRegistry registry;
      RunContext ctx;
      ctx.metrics = &registry;
      p->run(generate_case(*p, args.first_seed), ctx);
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << registry.to_json();
    }
    os << "}}\n";
    std::cout << "metrics written to " << args.metrics_path << "\n";
  }
  return any_violation ? 1 : 0;
}
