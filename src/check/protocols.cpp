#include "check/protocols.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/phibar_to_omega.h"
#include "fault/harness.h"
#include "fault/monitor.h"
#include "fd/faulty.h"
#include "fd/oracle.h"
#include "fd/query_oracles.h"
#include "sim/network.h"
#include "sim/process.h"
#include "util/check.h"
#include "util/rng.h"

namespace saf::check {

namespace {

// --- delivery digest ---------------------------------------------------

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// --- shared plumbing ---------------------------------------------------

/// Combines the mandatory digest with the caller's optional observer.
sim::DeliveryObserver tee(DeliveryDigest& digest,
                          const sim::DeliveryObserver& extra) {
  return [&digest, extra](Time at, ProcessId to, const sim::Message& m) {
    digest.observe(at, to, m);
    if (extra) extra(at, to, m);
  };
}

std::unique_ptr<sim::DelayPolicy> resolve_policy(const ScheduleCase& c,
                                                 const RunContext& ctx) {
  return ctx.delay_factory ? ctx.delay_factory()
                           : make_delay_policy(c.adversary);
}

/// Folds the watchdog + compliance outcome of a harness run into the
/// outcome's verdict fields. `out.ok` / `out.violations` must already be
/// set; under a fault spec only in-model violations keep ok == false —
/// explained (out-of-model) violations are witnesses, not failures.
void finish_verdict(RunOutcome& out, const RunContext& ctx, bool timed_out,
                    const fault::ComplianceReport& report) {
  out.timed_out = timed_out;
  out.verdict = fault::classify(timed_out, !out.violations.empty(), report);
  if (const fault::BrokenAssumption* f = report.first()) {
    out.first_broken = f->assumption;
    out.first_broken_at = f->at;
  }
  if (ctx.faults != nullptr && ctx.faults->enabled()) {
    out.ok = !fault::verdict_is_failure(out.verdict);
  }
}

// --- built-in protocol: k-set agreement (Fig 3) ------------------------

/// The PR-1 injected-bug wrapper, now a first-class spec knob: an Ω
/// oracle widened by one member — the classic bug of a transformation
/// forgetting to trim its candidate set. The reduced DFS must keep
/// catching the agreement violations it induces
/// (tests/test_dfs_reduction.cpp).
class WidenedLeaderOracle final : public fd::LeaderOracle {
 public:
  explicit WidenedLeaderOracle(const fd::LeaderOracle& inner)
      : inner_(inner) {}
  ProcSet trusted(ProcessId i, Time now) const override {
    ProcSet s = inner_.trusted(i, now);
    for (ProcessId extra = 0;; ++extra) {
      if (!s.contains(extra)) {
        s.insert(extra);
        return s;
      }
    }
  }

 private:
  const fd::LeaderOracle& inner_;
};

RunOutcome run_kset_case(const KSetProtocolSpec& spec, const ScheduleCase& c,
                         const RunContext& ctx) {
  core::KSetRunConfig cfg;
  cfg.n = spec.n;
  cfg.t = spec.t;
  cfg.k = spec.k;
  cfg.z = spec.k;
  cfg.seed = c.seed;
  cfg.omega_stab = 200;
  cfg.perfect_oracle = spec.perfect_oracle;
  cfg.forced_final_set = spec.forced_final_set;
  cfg.horizon = spec.horizon;
  cfg.crashes = c.crashes;
  if (spec.equal_proposals) {
    cfg.proposals.assign(static_cast<std::size_t>(spec.n), 100);
  }
  if (spec.widen_oracle) {
    cfg.oracle_wrapper = [](const fd::LeaderOracle& base) {
      return std::make_unique<WidenedLeaderOracle>(base);
    };
  }
  DeliveryDigest digest;
  cfg.delivery_observer = tee(digest, ctx.observer);
  cfg.on_simulator = ctx.on_simulator;
  cfg.trace_sink = ctx.trace_sink;
  cfg.metrics = ctx.metrics;
  cfg.trace_mask = ctx.trace_mask;
  cfg.faults = ctx.faults;
  cfg.max_events = ctx.max_events;
  cfg.wall_budget_ms = ctx.wall_budget_ms;
  auto policy = resolve_policy(c, ctx);
  cfg.delay_factory = [&policy](std::uint64_t) { return std::move(policy); };
  const core::KSetRunResult res = core::run_kset_agreement(cfg);

  RunOutcome out;
  out.violations = core::kset_invariants(cfg, res);
  out.ok = out.violations.empty();
  out.events_processed = res.events_processed;
  out.total_messages = res.total_messages;
  out.digest = digest.value();
  out.decisions = res.decisions;
  finish_verdict(out, ctx, res.timed_out, res.compliance);
  return out;
}

// --- built-in protocol: two wheels (§4) --------------------------------

RunOutcome run_two_wheels_case(const TwoWheelsProtocolSpec& spec,
                               const ScheduleCase& c, const RunContext& ctx) {
  core::TwoWheelsConfig cfg;
  cfg.n = spec.n;
  cfg.t = spec.t;
  cfg.x = spec.x;
  cfg.y = spec.y;  // z = t + 2 - x - y
  cfg.seed = c.seed;
  cfg.horizon = spec.horizon;
  cfg.sx_stab = spec.sx_stab;
  cfg.phi_stab = spec.phi_stab;
  cfg.inquiry_period = spec.inquiry_period;
  cfg.crashes = c.crashes;
  DeliveryDigest digest;
  cfg.delivery_observer = tee(digest, ctx.observer);
  cfg.on_simulator = ctx.on_simulator;
  cfg.trace_sink = ctx.trace_sink;
  cfg.metrics = ctx.metrics;
  cfg.trace_mask = ctx.trace_mask;
  cfg.faults = ctx.faults;
  cfg.max_events = ctx.max_events;
  cfg.wall_budget_ms = ctx.wall_budget_ms;
  auto policy = resolve_policy(c, ctx);
  cfg.delay_factory = [&policy](std::uint64_t) { return std::move(policy); };
  const core::TwoWheelsResult res = core::run_two_wheels(cfg);

  RunOutcome out;
  out.violations = core::two_wheels_invariants(cfg, res);
  out.ok = out.violations.empty();
  out.events_processed = res.events_processed;
  out.total_messages = res.total_messages;
  out.digest = digest.value();
  for (const auto& tr : res.trusted_history) {
    out.decisions.push_back(static_cast<std::int64_t>(tr.final().mask()));
  }
  for (const auto& tr : res.repr_history) {
    out.decisions.push_back(tr.final());
  }
  finish_verdict(out, ctx, res.timed_out, res.compliance);
  return out;
}

// --- built-in protocol: phibar -> omega (Appendix A) -------------------

struct BeatMsg final : sim::Message {
  std::string_view tag() const override { return "beat"; }
};

/// Keeps the network busy so crash plans (send triggers) and delay
/// adversaries have traffic to act on; the adaptor itself is message-
/// free.
class HeartbeatProcess final : public sim::Process {
 public:
  HeartbeatProcess(ProcessId id, int n, int t, Time period)
      : Process(id, n, t), period_(period) {}

  sim::ProtocolTask run() override {
    while (true) {
      broadcast_interned<BeatMsg>();  // fixed vocabulary: one arena object
      co_await sleep_for(period_);
    }
  }

 private:
  Time period_;
};

RunOutcome run_phibar_case(const ScheduleCase& c, const RunContext& ctx) {
  constexpr int n = 8, t = 3, y = 2, z = 2;  // y + z >= t + 1
  constexpr Time horizon = 20'000;
  sim::SimConfig sc;
  sc.seed = c.seed;
  sc.n = n;
  sc.t = t;
  sc.horizon = horizon;
  sc.max_events = ctx.max_events;
  sc.wall_budget_ms = ctx.wall_budget_ms;
  sim::Simulator sim(sc, c.crashes, resolve_policy(c, ctx));
  DeliveryDigest digest;
  sim.set_delivery_observer(tee(digest, ctx.observer));
  if (ctx.trace_sink != nullptr || ctx.metrics != nullptr) {
    sim.set_trace(ctx.trace_sink, ctx.metrics, ctx.trace_mask);
  }
  fault::RunFaults faults(sim, ctx.faults);
  for (ProcessId i = 0; i < n; ++i) {
    sim.add_process(std::make_unique<HeartbeatProcess>(i, n, t, 250));
  }
  if (ctx.on_simulator) ctx.on_simulator(sim);
  fd::QueryOracleParams qp;
  qp.stab_time = 200;
  qp.detect_delay = 15;
  qp.seed = util::derive_seed(c.seed, "phi");
  fd::PhiOracle phi(sim.pattern(), y, qp);
  // Fault layer: a lying φ_y slots in under the φ̄ containment wrapper,
  // so the adaptor consumes (and the monitors judge) the faulty answers.
  const fd::QueryOracle* phi_in = &phi;
  std::unique_ptr<fd::LyingQueryOracle> lying;
  if (faults.enabled() &&
      ctx.faults->oracle.kind == fault::OracleFaultKind::kLyingQuery) {
    lying = std::make_unique<fd::LyingQueryOracle>(
        *phi_in, t, y,
        fd::FaultyOracleParams{ctx.faults->oracle.from,
                               ctx.faults->oracle.period});
    phi_in = lying.get();
  }
  fd::PhiBarOracle phibar(*phi_in);
  core::PhiBarToOmega omega(phibar, n, t, y, z);
  sim.run();
  // The adaptor is message-free; trace its final Ω outputs explicitly so
  // a golden trace pins the constructed detector, not just the schedule.
  if (sim.tracer().active()) {
    for (ProcessId i = 0; i < n; ++i) {
      sim.tracer().protocol(
          trace::Kind::kNote, horizon, i,
          static_cast<std::int64_t>(omega.trusted(i, horizon).mask()),
          "phibar_omega");
    }
  }

  RunOutcome out;
  out.violations = core::phibar_invariants(
      *phi_in, omega, sim.pattern(), y, z, horizon, /*step=*/100,
      util::derive_seed(c.seed, "phibar_check"));
  out.ok = out.violations.empty();
  out.events_processed = sim.events_processed();
  out.total_messages = sim.network().total_sent();
  out.digest = digest.value();
  for (ProcessId i = 0; i < n; ++i) {
    out.decisions.push_back(
        static_cast<std::int64_t>(omega.trusted(i, horizon).mask()));
  }
  fault::ComplianceReport report;
  if (faults.enabled()) {
    faults.base_assumptions(sim.pattern(), report);
    fault::MonitorWindow w;
    w.deadline = qp.stab_time + 100;
    w.end = sim.now();
    w.step = 100;
    fault::monitor_query_contract(*phi_in, sim.pattern(), y, w, report);
  }
  finish_verdict(out, ctx, sim.timed_out(), report);
  return out;
}

// --- symmetry signatures -----------------------------------------------

/// One word per process folding everything that distinguishes it under
/// a pinned perfect oracle: its proposal, its forced-set membership and
/// its crash-plan entries. The DFS overrides the delay adversary, so
/// the case's adversary spec is deliberately excluded.
std::vector<std::uint64_t> kset_sym_signatures(const KSetProtocolSpec& spec,
                                               const ScheduleCase& c) {
  std::vector<std::uint64_t> sig(static_cast<std::size_t>(spec.n));
  for (int i = 0; i < spec.n; ++i) {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= kFnvPrime;
      }
    };
    mix(static_cast<std::uint64_t>(
        spec.equal_proposals ? 100 : 100 + i));
    mix(spec.forced_final_set->contains(i) ? 1 : 0);
    for (const sim::CrashEntry& e : c.crashes.entries()) {
      if (e.pid != i) continue;
      if (e.send_trigger) {
        mix(0x5354ull);  // "ST"
        mix(*e.send_trigger);
      } else {
        mix(0x4154ull);  // "AT"
        mix(static_cast<std::uint64_t>(e.at_time));
      }
    }
    sig[static_cast<std::size_t>(i)] = h;
  }
  return sig;
}

// --- registry ----------------------------------------------------------

std::vector<Protocol>& registry() {
  static std::vector<Protocol> protocols = [] {
    std::vector<Protocol> p;
    KSetProtocolSpec kset;
    kset.name = "kset";
    kset.n = 7;
    kset.t = 3;
    kset.k = 2;
    kset.horizon = 60'000;
    p.push_back(make_kset_protocol(kset));
    TwoWheelsProtocolSpec tw;
    tw.name = "two-wheels";
    tw.n = 7;
    tw.t = 3;
    tw.x = 2;
    tw.y = 1;  // z = t + 2 - x - y = 2
    tw.horizon = 30'000;
    tw.sx_stab = 300;
    tw.phi_stab = 300;
    p.push_back(make_two_wheels_protocol(tw));
    p.push_back({"phibar", 8, 3, 20'000, run_phibar_case, nullptr});
    // Consensus-sized instance for the bounded-DFS interleaving mode
    // (small enough that the choice tree is exhaustible).
    KSetProtocolSpec small;
    small.name = "kset-small";
    p.push_back(make_kset_protocol(small));
    // Symmetric consensus instance for the DFS symmetry reduction:
    // equal proposals and a pinned perfect oracle make every
    // relabeling of {1, 2, 3} a run symmetry (S_3, group order 6).
    KSetProtocolSpec sym;
    sym.name = "kset-sym";
    sym.equal_proposals = true;
    sym.perfect_oracle = true;
    sym.forced_final_set = ProcSet{0};
    p.push_back(make_kset_protocol(sym));
    // Minimal two-wheels instance sized for dispatch-order DFS.
    TwoWheelsProtocolSpec tws;
    tws.name = "two-wheels-small";
    p.push_back(make_two_wheels_protocol(tws));
    return p;
  }();
  return protocols;
}

}  // namespace

Protocol make_kset_protocol(const KSetProtocolSpec& spec) {
  util::require(!spec.name.empty(), "make_kset_protocol: need a name");
  Protocol p;
  p.name = spec.name;
  p.n = spec.n;
  p.t = spec.t;
  p.horizon = spec.horizon;
  p.run = [spec](const ScheduleCase& c, const RunContext& ctx) {
    return run_kset_case(spec, c, ctx);
  };
  // Only a pinned constant oracle makes relabelings true symmetries:
  // a stabilizing oracle's pre-stabilization output depends on raw ids.
  if (spec.perfect_oracle && spec.forced_final_set.has_value()) {
    p.sym_signatures = [spec](const ScheduleCase& c) {
      return kset_sym_signatures(spec, c);
    };
  }
  return p;
}

Protocol make_two_wheels_protocol(const TwoWheelsProtocolSpec& spec) {
  util::require(!spec.name.empty(), "make_two_wheels_protocol: need a name");
  Protocol p;
  p.name = spec.name;
  p.n = spec.n;
  p.t = spec.t;
  p.horizon = spec.horizon;
  p.run = [spec](const ScheduleCase& c, const RunContext& ctx) {
    return run_two_wheels_case(spec, c, ctx);
  };
  // No sym_signatures: the wheels' ring scans order positions by raw
  // process id, so relabelings are not run symmetries (identity group).
  return p;
}

void DeliveryDigest::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xff;
    h_ *= kFnvPrime;
  }
}

void DeliveryDigest::observe(Time at, ProcessId to, const sim::Message& m) {
  mix(static_cast<std::uint64_t>(at));
  mix(static_cast<std::uint64_t>(to));
  for (const char ch : m.tag()) {
    h_ ^= static_cast<unsigned char>(ch);
    h_ *= kFnvPrime;
  }
  ++count_;
}

const Protocol* find_protocol(std::string_view name) {
  for (const Protocol& p : registry()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const Protocol& p : registry()) names.push_back(p.name);
  return names;
}

void register_protocol(Protocol p) {
  util::require(!p.name.empty() && p.run != nullptr,
                "register_protocol: need a name and a run function");
  for (Protocol& existing : registry()) {
    if (existing.name == p.name) {
      existing = std::move(p);
      return;
    }
  }
  registry().push_back(std::move(p));
}

ScheduleCase generate_case(const Protocol& p, std::uint64_t seed) {
  ScheduleCase c;
  c.seed = seed;
  util::Rng rng(util::derive_seed(seed, "case"));

  // Crash plan: up to t crashes over distinct victims. One third of the
  // cases use a crash-at-send *burst* (several processes dying within a
  // few sends of each other, mid-broadcast); otherwise each victim
  // independently crashes at a random time or send count.
  const int ncrash = static_cast<int>(rng.uniform(0, p.t));
  std::vector<ProcessId> ids(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) ids[static_cast<std::size_t>(i)] = i;
  rng.shuffle(ids);
  const bool burst = rng.flip(1.0 / 3.0);
  const std::uint64_t burst_base =
      static_cast<std::uint64_t>(rng.uniform(1, 30));
  for (int i = 0; i < ncrash; ++i) {
    const ProcessId pid = ids[static_cast<std::size_t>(i)];
    if (burst) {
      c.crashes.crash_after_sends(
          pid, burst_base + static_cast<std::uint64_t>(rng.uniform(0, 5)));
    } else if (rng.flip(0.5)) {
      c.crashes.crash_at(pid, rng.uniform(0, p.horizon / 4));
    } else {
      c.crashes.crash_after_sends(
          pid, static_cast<std::uint64_t>(rng.uniform(1, 60)));
    }
  }

  // Delay adversary: cycle through the kinds so every seed band
  // exercises every bias. Windows close early enough (<= horizon/8)
  // that eventual properties still have room to stabilize.
  AdversarySpec a;
  switch (rng.uniform(0, 3)) {
    case 0:
      a.kind = AdversaryKind::kUniform;
      a.hi = rng.uniform(2, 30);
      break;
    case 1: {
      a.kind = AdversaryKind::kStarvation;
      const int nv = static_cast<int>(rng.uniform(1, p.n - 1));
      a.victims = rng.subset(ProcSet::full(p.n), nv);
      a.release = rng.uniform(p.horizon / 20, p.horizon / 8);
      break;
    }
    case 2:
      a.kind = AdversaryKind::kNearHorizon;
      a.release = rng.uniform(p.horizon / 20, p.horizon / 8);
      break;
    default:
      a.kind = AdversaryKind::kBursty;
      a.epoch = rng.uniform(32, 256);
      a.slow_lo = 40;
      a.slow_hi = rng.uniform(80, 160);
      break;
  }
  c.adversary = a;
  return c;
}

std::string describe_case(const ScheduleCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " crashes=[";
  bool first = true;
  for (const sim::CrashEntry& e : c.crashes.entries()) {
    if (!first) os << " ";
    first = false;
    if (e.send_trigger) {
      os << "p" << e.pid << "#" << *e.send_trigger;
    } else {
      os << "p" << e.pid << "@" << e.at_time;
    }
  }
  os << "] adversary={" << c.adversary.to_string() << "}";
  return os.str();
}

}  // namespace saf::check
