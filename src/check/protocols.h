// The protocol registry of the schedule-exploration harness.
//
// A Protocol is a named, self-contained run harness: given a
// ScheduleCase — the full serializable identity of one run (seed, crash
// plan, delay adversary) — it executes the protocol on the simulator
// and evaluates its registered invariants (core/invariants.h) against
// the ground-truth FailurePattern. Built-ins cover the paper's three
// pillars (Fig 3 k-set agreement, the §4 two-wheels addition, the
// Appendix A φ̄→Ω adaptor); tests register deliberately buggy fixtures
// through the same interface to prove the harness catches them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/adversary.h"
#include "core/invariants.h"
#include "fault/fault_spec.h"
#include "fault/verdict.h"
#include "sim/failure_pattern.h"
#include "sim/simulator.h"

namespace saf::check {

/// Everything that determines a run, byte for byte.
struct ScheduleCase {
  std::uint64_t seed = 1;
  sim::CrashPlan crashes;
  AdversarySpec adversary;
};

/// Per-run hooks threaded through a Protocol::run call.
struct RunContext {
  /// Overrides the delay policy (record/replay, bounded DFS); when null
  /// the case's adversary spec builds one.
  std::function<std::unique_ptr<sim::DelayPolicy>()> delay_factory;
  /// Extra observer of every delivery (trace recording); may be null —
  /// the digest below is computed regardless.
  sim::DeliveryObserver observer;
  /// Optional structured trace sink / metrics registry, forwarded into
  /// the protocol's run harness (see trace/trace.h). Null — the default
  /// and the sweep hot path — leaves the engine untraced.
  trace::TraceSink* trace_sink = nullptr;
  trace::MetricsRegistry* metrics = nullptr;
  std::uint32_t trace_mask = trace::kDefaultMask;
  /// Optional fault spec (src/fault/): lossy links, spec-violating
  /// oracle wraps, extra crashes. Null keeps the run — and its digest —
  /// bit-identical to the clean path. Must outlive the run call.
  const fault::FaultSpec* faults = nullptr;
  /// Watchdog budgets (0 = disabled). The event budget is deterministic;
  /// the wall-clock budget is a non-reproducible safety net.
  std::uint64_t max_events = 0;
  std::int64_t wall_budget_ms = 0;
  /// Hands the run's Simulator to the caller after construction and
  /// before the run starts — the DFS checker installs its race chooser
  /// and state-digest sampling through this seam. May be null; a
  /// protocol harness that cannot thread it simply never calls it (the
  /// DFS menu mode degrades gracefully without it, the dispatch-order
  /// mode requires it).
  std::function<void(sim::Simulator&)> on_simulator;
};

struct RunOutcome {
  bool ok = true;
  std::vector<core::InvariantViolation> violations;
  std::uint64_t events_processed = 0;
  std::uint64_t total_messages = 0;
  /// FNV-1a fingerprint of the delivery order (time, recipient, tag of
  /// every delivered message) — equal digests mean the runs decided the
  /// same event order.
  std::uint64_t digest = 0;
  /// Protocol observables (decisions / final detector outputs), for
  /// determinism pinning.
  std::vector<std::int64_t> decisions;
  /// Model-compliance verdict (fault/verdict.h). Without a fault spec a
  /// run is SAFE_IN_MODEL or — on an invariant violation —
  /// VIOLATION_IN_MODEL; the fault layer adds the out-of-model and
  /// watchdog verdicts.
  fault::Verdict verdict = fault::Verdict::kSafeInModel;
  /// First broken assumption (stable id, e.g. "channel.loss") and the
  /// virtual time it broke; empty / kNeverTime when in model.
  std::string first_broken;
  Time first_broken_at = kNeverTime;
  bool timed_out = false;  ///< a watchdog budget stopped the run
};

struct Protocol {
  std::string name;
  int n = 0;
  int t = 0;
  Time horizon = 0;
  std::function<RunOutcome(const ScheduleCase&, const RunContext&)> run;
  /// Optional symmetry signatures for the DFS symmetry reduction: maps
  /// a case to one word per process encoding everything that
  /// distinguishes it from the outside (proposal, crash-plan entries,
  /// oracle-scope membership). Process-id relabelings preserving the
  /// signature vector are treated as run symmetries (the DFS overrides
  /// the delay adversary, so it is excluded). Null — the default —
  /// claims no nontrivial symmetry.
  std::function<std::vector<std::uint64_t>(const ScheduleCase&)>
      sym_signatures;
};

/// Spec for a registerable k-set agreement instance (Fig 3) — the
/// built-in "kset"/"kset-small"/"kset-sym" entries and the DFS test
/// fixtures all come from make_kset_protocol.
struct KSetProtocolSpec {
  std::string name;
  int n = 4;
  int t = 1;
  int k = 1;
  Time horizon = 8'000;
  /// All processes propose 100 (instead of 100 + i) — required for the
  /// decision multiset to be invariant under process relabeling.
  bool equal_proposals = false;
  /// Perfect Ω_k: output fixed from time 0 (§3.2).
  bool perfect_oracle = false;
  /// Pin the oracle's final leader set. Together with perfect_oracle
  /// this makes the oracle a known constant, so relabelings fixing the
  /// set (and the proposals / crash plan) are true run symmetries —
  /// sym_signatures is populated exactly in that configuration.
  std::optional<ProcSet> forced_final_set;
  /// Interpose the widened-Ω bug (every output gains one extra leader,
  /// the classic transformation bug from the injected-bug fixture):
  /// with distinct proposals and k == 1 the right interleavings decide
  /// two values. The reduced DFS must keep finding them.
  bool widen_oracle = false;
};
Protocol make_kset_protocol(const KSetProtocolSpec& spec);

/// Spec for a registerable two-wheels instance (§4); defaults are the
/// DFS-sized "two-wheels-small" entry (z = t + 2 - x - y = 1).
struct TwoWheelsProtocolSpec {
  std::string name;
  int n = 4;
  int t = 1;
  int x = 1;  ///< ◇S_x scope
  int y = 1;  ///< ◇φ_y class index
  Time horizon = 2'500;
  Time sx_stab = 100;
  Time phi_stab = 100;
  Time inquiry_period = 8;
};
Protocol make_two_wheels_protocol(const TwoWheelsProtocolSpec& spec);

/// Looks up a protocol by name; nullptr if unknown.
const Protocol* find_protocol(std::string_view name);
/// Names of all registered protocols, registration order.
std::vector<std::string> protocol_names();
/// Registers (or replaces, by name) a protocol. Test fixtures use this
/// to inject buggy variants.
void register_protocol(Protocol p);

/// Deterministically generates a biased adversarial case from `seed`:
/// a random crash plan (time crashes, send-trigger bursts, crash-free
/// runs) plus a delay adversary cycling through the AdversaryKind menu.
ScheduleCase generate_case(const Protocol& p, std::uint64_t seed);

/// Incremental FNV-1a fingerprint of a delivery sequence.
class DeliveryDigest {
 public:
  void observe(Time at, ProcessId to, const sim::Message& m);
  std::uint64_t value() const { return h_; }
  std::uint64_t count() const { return count_; }

 private:
  void mix(std::uint64_t v);
  std::uint64_t h_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
};

/// One-line human summary of a case ("seed=42 crashes=[p4@120 p1#25]
/// adversary=...").
std::string describe_case(const ScheduleCase& c);

}  // namespace saf::check
