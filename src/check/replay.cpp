#include "check/replay.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace saf::check {

RecordingDelayPolicy::RecordingDelayPolicy(
    std::unique_ptr<sim::DelayPolicy> base, DelayTrace* out)
    : base_(std::move(base)), out_(out) {
  SAF_CHECK(base_ != nullptr && out_ != nullptr);
}

Time RecordingDelayPolicy::delay(ProcessId from, ProcessId to, Time now,
                                 util::Rng& rng) {
  const Time d = base_->delay(from, to, now, rng);
  out_->push_back(DelayRecord{from, to, now, d});
  return d;
}

Time ReplayDelayPolicy::delay(ProcessId from, ProcessId to, Time now,
                              util::Rng& rng) {
  (void)rng;
  if (st_->cursor >= st_->records->size()) {
    if (!st_->diverged) {
      st_->diverged = true;
      std::ostringstream os;
      os << "replay: run requested delay #" << st_->cursor
         << " but the trace recorded only " << st_->records->size();
      st_->detail = os.str();
    }
    ++st_->cursor;
    return 1;
  }
  const DelayRecord& r = (*st_->records)[st_->cursor++];
  if (!st_->diverged && (r.from != from || r.to != to || r.at != now)) {
    st_->diverged = true;
    std::ostringstream os;
    os << "replay: delay #" << (st_->cursor - 1) << " expected p" << r.from
       << "->p" << r.to << " at " << r.at << ", run requested p" << from
       << "->p" << to << " at " << now;
    st_->detail = os.str();
  }
  return std::max<Time>(r.delay, 1);
}

std::string violation_summary(const RunOutcome& out) {
  if (out.violations.empty()) return "";
  return out.violations[0].invariant + ": " + out.violations[0].detail;
}

RunOutcome record_case(const Protocol& p, const ScheduleCase& c,
                       TraceFile* out) {
  SAF_CHECK(out != nullptr);
  out->protocol = p.name;
  out->c = c;
  out->delays.clear();
  RunContext ctx;
  ctx.delay_factory = [&c, out] {
    return std::make_unique<RecordingDelayPolicy>(
        make_delay_policy(c.adversary), &out->delays);
  };
  RunOutcome res = p.run(c, ctx);
  out->events = res.events_processed;
  out->digest = res.digest;
  out->violation = violation_summary(res);
  return res;
}

void write_trace(const TraceFile& t, std::ostream& os) {
  os << "saf-trace 1\n";
  os << "protocol " << t.protocol << "\n";
  os << "seed " << t.c.seed << "\n";
  os << "adversary " << t.c.adversary.to_string() << "\n";
  for (const sim::CrashEntry& e : t.c.crashes.entries()) {
    if (e.send_trigger) {
      os << "crash sends " << e.pid << " " << *e.send_trigger << "\n";
    } else {
      os << "crash at " << e.pid << " " << e.at_time << "\n";
    }
  }
  os << "delays " << t.delays.size() << "\n";
  for (const DelayRecord& r : t.delays) {
    os << "d " << r.from << " " << r.to << " " << r.at << " " << r.delay
       << "\n";
  }
  os << "events " << t.events << "\n";
  os << "digest " << t.digest << "\n";
  if (!t.violation.empty()) os << "violation " << t.violation << "\n";
  os << "end\n";
}

void write_trace(const TraceFile& t, const std::string& path) {
  std::ofstream os(path);
  util::require(os.good(), "write_trace: cannot open " + path);
  write_trace(t, os);
  util::require(os.good(), "write_trace: write failed for " + path);
}

TraceFile read_trace(std::istream& is) {
  // The parser is deliberately strict: a trace that ends mid-file (a
  // crashed recorder, a truncated copy) must fail HERE with a message
  // naming the missing or garbled line, never reach replay and report a
  // confusing divergence. Every diagnostic carries the 1-based line
  // number.
  TraceFile t;
  std::string line;
  std::size_t lineno = 0;
  auto where = [&lineno] {
    return " (line " + std::to_string(lineno) + ")";
  };
  auto next_line = [&](const char* what) {
    ++lineno;
    util::require(static_cast<bool>(std::getline(is, line)),
                  std::string("read_trace: file truncated before ") + what +
                      where());
  };
  next_line("the 'saf-trace 1' header");
  util::require(line == "saf-trace 1",
                "read_trace: bad header '" + line + "'" + where());
  bool saw_end = false;
  bool saw_delays = false, saw_events = false, saw_digest = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "protocol") {
      ls >> t.protocol;
    } else if (key == "seed") {
      ls >> t.c.seed;
    } else if (key == "adversary") {
      std::string rest;
      std::getline(ls, rest);
      t.c.adversary = AdversarySpec::parse(rest);
    } else if (key == "crash") {
      std::string mode;
      ProcessId pid = -1;
      ls >> mode >> pid;
      if (mode == "at") {
        Time at = 0;
        ls >> at;
        t.c.crashes.crash_at(pid, at);
      } else if (mode == "sends") {
        std::uint64_t sends = 0;
        ls >> sends;
        t.c.crashes.crash_after_sends(pid, sends);
      } else {
        throw std::invalid_argument("read_trace: bad crash mode '" + mode +
                                    "'" + where());
      }
    } else if (key == "delays") {
      std::size_t count = 0;
      ls >> count;
      util::require(!ls.fail(),
                    "read_trace: bad delay count '" + line + "'" + where());
      saw_delays = true;
      t.delays.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        next_line(("delay record " + std::to_string(i + 1) + " of " +
                   std::to_string(count))
                      .c_str());
        std::istringstream ds(line);
        std::string d;
        DelayRecord r;
        ds >> d >> r.from >> r.to >> r.at >> r.delay;
        util::require(d == "d" && !ds.fail(),
                      "read_trace: garbled delay record '" + line + "'" +
                          where());
        t.delays.push_back(r);
      }
    } else if (key == "events") {
      ls >> t.events;
      saw_events = true;
    } else if (key == "digest") {
      ls >> t.digest;
      saw_digest = true;
    } else if (key == "violation") {
      std::string rest;
      std::getline(ls, rest);
      t.violation = rest.empty() ? rest : rest.substr(1);  // drop the space
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      throw std::invalid_argument("read_trace: unknown key '" + key + "'" +
                                  where());
    }
    util::require(!ls.fail(),
                  "read_trace: malformed line '" + line + "'" + where());
  }
  util::require(saw_end,
                "read_trace: file truncated — missing 'end' marker after " +
                    std::to_string(lineno) + " lines");
  // Trailing garbage after `end` means the file is not the trace the
  // digest pins — refuse rather than silently ignore it.
  while (std::getline(is, line)) {
    ++lineno;
    util::require(line.empty(), "read_trace: trailing garbage after 'end': '" +
                                    line + "'" + where());
  }
  util::require(!t.protocol.empty(), "read_trace: missing protocol line");
  util::require(saw_delays,
                "read_trace: missing 'delays' section — not a complete "
                "recording");
  util::require(saw_events, "read_trace: missing 'events' line");
  util::require(saw_digest, "read_trace: missing 'digest' line");
  return t;
}

TraceFile read_trace(const std::string& path) {
  std::ifstream is(path);
  util::require(is.good(), "read_trace: cannot open " + path);
  return read_trace(is);
}

ReplayResult replay_trace(const TraceFile& t) {
  const Protocol* p = find_protocol(t.protocol);
  util::require(p != nullptr,
                "replay_trace: unknown protocol '" + t.protocol + "'");
  ReplayState st;
  st.records = &t.delays;
  RunContext ctx;
  ctx.delay_factory = [&st] {
    return std::make_unique<ReplayDelayPolicy>(&st);
  };
  ReplayResult res;
  res.outcome = p->run(t.c, ctx);
  res.diverged = st.diverged;
  const std::string observed = violation_summary(res.outcome);
  std::ostringstream os;
  if (st.diverged) os << st.detail << "; ";
  if (res.outcome.digest != t.digest) {
    os << "digest mismatch (trace " << t.digest << ", run "
       << res.outcome.digest << "); ";
  }
  if (res.outcome.events_processed != t.events) {
    os << "event-count mismatch (trace " << t.events << ", run "
       << res.outcome.events_processed << "); ";
  }
  if (observed != t.violation) {
    os << "violation mismatch (trace '" << t.violation << "', run '"
       << observed << "'); ";
  }
  res.detail = os.str();
  res.matched = res.detail.empty();
  if (res.matched) res.detail = "replayed byte-for-byte";
  return res;
}

}  // namespace saf::check
