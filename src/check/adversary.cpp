#include "check/adversary.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace saf::check {

namespace {

/// Messages from `victims` sent before `release` are held so they land
/// shortly after `release` (the region looks crashed, then "catches
/// up" — the R' construction of the irreducibility proofs, randomized).
class StarvationDelay final : public sim::DelayPolicy {
 public:
  explicit StarvationDelay(AdversarySpec a) : a_(a) {}
  Time delay(ProcessId from, ProcessId to, Time now,
             util::Rng& rng) override {
    (void)to;
    if (a_.victims.contains(from) && now < a_.release) {
      return std::max<Time>(a_.release - now + rng.uniform(0, a_.hi), 1);
    }
    return rng.uniform(a_.lo, a_.hi);
  }

 private:
  AdversarySpec a_;
};

/// Every message sent before `release` arrives in a small window just
/// after it: a long global silence followed by a delivery avalanche.
class NearHorizonDelay final : public sim::DelayPolicy {
 public:
  explicit NearHorizonDelay(AdversarySpec a) : a_(a) {}
  Time delay(ProcessId, ProcessId, Time now, util::Rng& rng) override {
    if (now < a_.release) {
      return std::max<Time>(a_.release - now + rng.uniform(0, 4 * a_.hi), 1);
    }
    return rng.uniform(a_.lo, a_.hi);
  }

 private:
  AdversarySpec a_;
};

/// Alternating fast/slow epochs keyed off the send time.
class BurstyDelay final : public sim::DelayPolicy {
 public:
  explicit BurstyDelay(AdversarySpec a) : a_(a) {}
  Time delay(ProcessId, ProcessId, Time now, util::Rng& rng) override {
    const bool slow = (now / a_.epoch) % 2 == 1;
    return slow ? rng.uniform(a_.slow_lo, a_.slow_hi)
                : rng.uniform(a_.lo, a_.hi);
  }

 private:
  AdversarySpec a_;
};

const char* kind_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kUniform: return "uniform";
    case AdversaryKind::kStarvation: return "starvation";
    case AdversaryKind::kNearHorizon: return "near-horizon";
    case AdversaryKind::kBursty: return "bursty";
  }
  return "uniform";
}

}  // namespace

std::string AdversarySpec::to_string() const {
  std::ostringstream os;
  os << kind_name(kind) << " lo=" << lo << " hi=" << hi;
  switch (kind) {
    case AdversaryKind::kUniform:
      break;
    case AdversaryKind::kStarvation:
      os << " victims=0x" << victims.to_hex() << " release=" << release;
      break;
    case AdversaryKind::kNearHorizon:
      os << " release=" << release;
      break;
    case AdversaryKind::kBursty:
      os << " slow_lo=" << slow_lo << " slow_hi=" << slow_hi
         << " epoch=" << epoch;
      break;
  }
  return os.str();
}

AdversarySpec AdversarySpec::parse(const std::string& line) {
  std::istringstream is(line);
  std::string kind;
  is >> kind;
  AdversarySpec a;
  if (kind == "uniform") {
    a.kind = AdversaryKind::kUniform;
  } else if (kind == "starvation") {
    a.kind = AdversaryKind::kStarvation;
  } else if (kind == "near-horizon") {
    a.kind = AdversaryKind::kNearHorizon;
  } else if (kind == "bursty") {
    a.kind = AdversaryKind::kBursty;
  } else {
    throw std::invalid_argument("AdversarySpec: unknown kind '" + kind + "'");
  }
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    util::require(eq != std::string::npos,
                  "AdversarySpec: malformed token '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
      if (key == "lo") a.lo = std::stoll(val);
      else if (key == "hi") a.hi = std::stoll(val);
      else if (key == "release") a.release = std::stoll(val);
      else if (key == "slow_lo") a.slow_lo = std::stoll(val);
      else if (key == "slow_hi") a.slow_hi = std::stoll(val);
      else if (key == "epoch") a.epoch = std::stoll(val);
      else if (key == "victims")
        a.victims = val.starts_with("0x") || val.starts_with("0X")
                        ? ProcSet::from_hex(val)
                        : ProcSet(std::stoull(val, nullptr, 0));
      else
        throw std::invalid_argument("AdversarySpec: unknown key '" + key +
                                    "'");
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("AdversarySpec: bad value in '" + tok +
                                  "'");
    }
  }
  return a;
}

std::unique_ptr<sim::DelayPolicy> make_delay_policy(const AdversarySpec& a) {
  util::require(a.lo >= 1 && a.hi >= a.lo, "AdversarySpec: need 1 <= lo <= hi");
  switch (a.kind) {
    case AdversaryKind::kUniform:
      return std::make_unique<sim::UniformDelay>(a.lo, a.hi);
    case AdversaryKind::kStarvation:
      util::require(a.release >= 0, "AdversarySpec: negative release");
      return std::make_unique<StarvationDelay>(a);
    case AdversaryKind::kNearHorizon:
      util::require(a.release >= 0, "AdversarySpec: negative release");
      return std::make_unique<NearHorizonDelay>(a);
    case AdversaryKind::kBursty:
      util::require(a.epoch >= 1 && a.slow_lo >= 1 && a.slow_hi >= a.slow_lo,
                    "AdversarySpec: bad bursty band");
      return std::make_unique<BurstyDelay>(a);
  }
  return std::make_unique<sim::UniformDelay>(a.lo, a.hi);
}

}  // namespace saf::check
