#include "check/dfs.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/delay_policy.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/state_digest.h"
#include "util/check.h"
#include "util/permutation.h"

namespace saf::check {

namespace {

/// One node on the DFS choice stack.
struct StackEntry {
  std::size_t choice = 0;    ///< branch taken on the current run
  std::size_t branches = 1;  ///< branching factor observed here
  std::uint64_t digest = 0;  ///< canonical state fingerprint, if any
  bool has_digest = false;
};

/// The unified replay/odometer engine behind both DFS modes. Each run
/// replays the committed choice prefix, then extends it with
/// first-branch choices; advance() moves the deepest non-exhausted
/// node to its next branch. The visited map keys canonical state
/// digests to the largest remaining-depth budget with which that state
/// has been fully explored — arriving at a known state with no more
/// budget than before proves the whole subtree is a duplicate.
class ChoiceEngine {
 public:
  ChoiceEngine(const DfsOptions& opt, std::vector<util::Perm> group,
               DfsStats* stats)
      : opt_(opt),
        group_(std::move(group)),
        stats_(stats),
        hashing_(opt.state_hash || opt.symmetry) {}

  void begin_run() {
    consumed_ = 0;
    prune_rest_ = false;
    sim_ = nullptr;
  }

  /// RunContext::on_simulator hands the run's engine here so choice
  /// points can fingerprint the state. Protocols that never call it
  /// (legacy fixtures) silently lose hashing in menu mode; the
  /// dispatch-order mode requires it (checked by the caller).
  void attach(sim::Simulator& sim) {
    sim_ = &sim;
    sim_seen_ = true;
  }
  bool sim_seen() const { return sim_seen_; }

  /// The core choice point: branch over `branches` alternatives,
  /// returning the branch for this run. Positions beyond `depth` — or
  /// below a pruned node — take the default branch 0 and consume no
  /// stack space, exactly like the original odometer.
  std::size_t choose(std::size_t branches) {
    if (branches <= 1) return 0;
    if (prune_rest_) return 0;
    if (consumed_ >= static_cast<std::size_t>(opt_.depth)) return 0;
    ++stats_->choice_points;
    const std::size_t i = consumed_;
    if (i < stack_.size()) {
      // Replaying this run's committed prefix. Determinism means the
      // branching factor must match what was seen on the first visit.
      util::require(stack_[i].branches == branches,
                    "dfs: nondeterministic branching on replay");
      ++consumed_;
      note_depth();
      return stack_[i].choice;
    }
    StackEntry e;
    e.branches = branches;
    if (hashing_ && sim_ != nullptr) {
      e.digest = canonical_digest();
      e.has_digest = true;
      const int budget = opt_.depth - static_cast<int>(i);
      auto [it, fresh] = visited_.try_emplace(e.digest, kUnexplored);
      if (fresh) ++stats_->distinct_states;
      if (!fresh && it->second >= budget) {
        // Fully explored before with at least this much depth left:
        // every continuation below is a duplicate. Finish the run on
        // default branches; advance() then moves on above this node.
        ++stats_->hash_prunes;
        prune_rest_ = true;
        return 0;
      }
    }
    stack_.push_back(e);
    ++consumed_;
    note_depth();
    return 0;  // new nodes always start at branch 0
  }

  /// Dispatch-order choice point: pick which of the race's same-instant
  /// pending deliveries dispatches next (an index into `race`).
  std::size_t choose_race(const std::vector<const sim::Event*>& race) {
    ++stats_->race_points;
    if (!opt_.por) return choose(race.size());
    // Persistent set: deliveries to ONE receiver form an ample set —
    // deliveries to distinct receivers commute (receiver-local state;
    // handler sends land at strictly later instants), UNLESS
    // dispatching one can fire a send-triggered crash, which mutates
    // the failure pattern every handler may read. In that case fall
    // back to the full race.
    bool clean = true;
    for (const sim::Event* e : race) {
      if (sim_->pending_send_trigger(e->to)) {
        clean = false;
        break;
      }
    }
    std::vector<std::size_t> ample;
    if (clean) {
      const ProcessId r0 = race.front()->to;
      for (std::size_t i = 0; i < race.size(); ++i) {
        if (race[i]->to == r0) ample.push_back(i);
      }
    } else {
      ample.resize(race.size());
      std::iota(ample.begin(), ample.end(), std::size_t{0});
    }
#ifndef NDEBUG
    // Ample-set soundness recheck: nonempty, contains the default
    // dispatch (so pruned/over-depth runs follow queue order), and
    // every deferred event targets a different receiver than the
    // ample set's.
    SAF_CHECK(!ample.empty() && ample.front() == 0);
    for (std::size_t i = 0, a = 0; i < race.size(); ++i) {
      if (a < ample.size() && ample[a] == i) {
        SAF_CHECK(race[i]->to == race[ample.front()]->to);
        ++a;
      } else {
        SAF_CHECK(race[i]->to != race[ample.front()]->to);
      }
    }
#endif
    // Beyond the explored frontier the chooser degenerates to the
    // default dispatch anyway — only count reduction where branching
    // would actually have happened.
    if (ample.size() < race.size() && !prune_rest_ &&
        consumed_ < static_cast<std::size_t>(opt_.depth)) {
      ++stats_->por_points;
      stats_->por_branches_saved += race.size() - ample.size();
    }
    return ample[choose(ample.size())];
  }

  /// Moves the odometer to the next unexplored leaf; false when the
  /// (reduced) tree is exhausted.
  bool advance() {
    // Entries beyond what this run consumed belong to abandoned deeper
    // branches; drop them before advancing.
    stack_.resize(std::min(stack_.size(), consumed_));
    while (!stack_.empty() &&
           stack_.back().choice + 1 >= stack_.back().branches) {
      // Exhausted node: its state is now fully explored with the
      // remaining budget it had; record that for future pruning.
      if (stack_.back().has_digest) {
        const int budget = opt_.depth - static_cast<int>(stack_.size()) + 1;
        int& best = visited_[stack_.back().digest];
        best = std::max(best, budget);
      }
      stack_.pop_back();
    }
    if (stack_.empty()) return false;
    ++stack_.back().choice;
    return true;
  }

 private:
  static constexpr int kUnexplored = -1;

  void note_depth() {
    stats_->max_depth_used =
        std::max(stats_->max_depth_used, static_cast<int>(consumed_));
  }

  /// Identity digest, minimized over the symmetry group when one is
  /// installed: the canonical fingerprint of the state's orbit.
  std::uint64_t canonical_digest() {
    ++stats_->states_hashed;
    sim::StateDigest d0;
    sim_->state_digest(d0);
    std::uint64_t best = d0.value();
    if (opt_.symmetry && group_.size() > 1) {
      bool relabeled = false;
      for (const util::Perm& perm : group_) {
        if (perm.is_identity()) continue;
        sim::StateDigest d(&perm);
        sim_->state_digest(d);
        if (d.value() < best) {
          best = d.value();
          relabeled = true;
        }
      }
      if (relabeled) ++stats_->sym_canonical_hits;
    }
    return best;
  }

  const DfsOptions& opt_;
  const std::vector<util::Perm> group_;
  DfsStats* stats_;
  const bool hashing_;
  std::vector<StackEntry> stack_;
  /// digest -> largest remaining-depth budget fully explored (or
  /// kUnexplored when only seen).
  std::unordered_map<std::uint64_t, int> visited_;
  std::size_t consumed_ = 0;
  bool prune_rest_ = false;
  sim::Simulator* sim_ = nullptr;
  bool sim_seen_ = false;
};

/// kDelayMenu mode: every delay request is a choice over the menu.
class MenuDelayPolicy final : public sim::DelayPolicy {
 public:
  MenuDelayPolicy(ChoiceEngine* eng, const std::vector<Time>* menu)
      : eng_(eng), menu_(menu) {}

  Time delay(ProcessId, ProcessId, Time, util::Rng&) override {
    return (*menu_)[eng_->choose(menu_->size())];
  }

 private:
  ChoiceEngine* eng_;
  const std::vector<Time>* menu_;
};

}  // namespace

DfsReport explore_interleavings(const Protocol& p, const ScheduleCase& base,
                                const DfsOptions& opt) {
  util::require(opt.depth >= 0, "dfs: negative depth");
  util::require(!opt.menu.empty(), "dfs: empty delay menu");
  for (const Time d : opt.menu) {
    util::require(d >= 1, "dfs: menu delays must be >= 1");
  }
  util::require(opt.step_delay >= 1, "dfs: step delay must be >= 1");
  const DfsMode mode = opt.por ? DfsMode::kDispatchOrder : opt.mode;

  DfsReport report;
  std::vector<util::Perm> group;
  if (opt.symmetry && p.sym_signatures != nullptr) {
    group = util::perms_fixing_signatures(p.sym_signatures(base));
  }
  report.stats.group_size = group.empty() ? 1 : group.size();

  ChoiceEngine eng(opt, std::move(group), &report.stats);
  std::unordered_set<std::uint64_t> digests;
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  while (report.runs < opt.max_runs) {
    if (opt.wall_budget_ms > 0 && elapsed_ms() >= opt.wall_budget_ms) break;
    eng.begin_run();
    RunContext ctx;
    if (mode == DfsMode::kDelayMenu) {
      ctx.delay_factory = [&eng, &opt] {
        return std::make_unique<MenuDelayPolicy>(&eng, &opt.menu);
      };
      ctx.on_simulator = [&eng](sim::Simulator& s) { eng.attach(s); };
    } else {
      ctx.delay_factory = [&opt] {
        return std::make_unique<sim::FixedDelay>(opt.step_delay);
      };
      ctx.on_simulator = [&eng](sim::Simulator& s) {
        eng.attach(s);
        s.set_race_chooser(
            [&eng](const std::vector<const sim::Event*>& race) {
              return eng.choose_race(race);
            });
      };
    }
    RunOutcome out = p.run(base, ctx);
    ++report.runs;
    if (mode == DfsMode::kDispatchOrder) {
      util::require(eng.sim_seen(),
                    "dfs: dispatch-order mode needs the protocol to thread "
                    "RunContext::on_simulator");
    }
    digests.insert(out.digest);
    std::vector<std::int64_t> ds = out.decisions;
    std::sort(ds.begin(), ds.end());
    report.decision_sets.insert(std::move(ds));
    if (!out.ok) report.violations.push_back(Violation{base, std::move(out)});
    if (!eng.advance()) {
      report.exhausted = true;
      break;
    }
  }
  report.distinct_digests = digests.size();
  report.stats.wall_ms = elapsed_ms();
  const double secs =
      static_cast<double>(std::max<std::int64_t>(report.stats.wall_ms, 1)) /
      1000.0;
  report.stats.runs_per_sec = static_cast<double>(report.runs) / secs;
  return report;
}

}  // namespace saf::check
