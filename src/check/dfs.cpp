#include "check/dfs.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace saf::check {

namespace {

/// Choice-stack state shared between the DFS loop and the policy the
/// network owns. `stack[i]` is the menu index of the i-th delay
/// request; the policy extends the stack with first-menu choices up to
/// `depth` and counts how many requests the run actually made.
struct ChoiceState {
  std::vector<std::size_t>* stack = nullptr;
  const std::vector<Time>* menu = nullptr;
  int depth = 0;
  std::size_t consumed = 0;
};

class ChoiceDelayPolicy final : public sim::DelayPolicy {
 public:
  explicit ChoiceDelayPolicy(ChoiceState* st) : st_(st) {}

  Time delay(ProcessId, ProcessId, Time, util::Rng&) override {
    std::size_t idx = 0;
    if (st_->consumed < st_->stack->size()) {
      idx = (*st_->stack)[st_->consumed];
    } else if (static_cast<int>(st_->stack->size()) < st_->depth &&
               st_->consumed == st_->stack->size()) {
      st_->stack->push_back(0);
    }
    ++st_->consumed;
    return (*st_->menu)[idx];
  }

 private:
  ChoiceState* st_;
};

}  // namespace

DfsReport explore_interleavings(const Protocol& p, const ScheduleCase& base,
                                const DfsOptions& opt) {
  util::require(opt.depth >= 0, "dfs: negative depth");
  util::require(!opt.menu.empty(), "dfs: empty delay menu");
  for (const Time d : opt.menu) {
    util::require(d >= 1, "dfs: menu delays must be >= 1");
  }

  DfsReport report;
  std::unordered_set<std::uint64_t> digests;
  std::vector<std::size_t> stack;
  while (report.runs < opt.max_runs) {
    ChoiceState st;
    st.stack = &stack;
    st.menu = &opt.menu;
    st.depth = opt.depth;
    RunContext ctx;
    ctx.delay_factory = [&st] {
      return std::make_unique<ChoiceDelayPolicy>(&st);
    };
    RunOutcome out = p.run(base, ctx);
    ++report.runs;
    digests.insert(out.digest);
    if (!out.ok) report.violations.push_back(Violation{base, std::move(out)});

    // Entries beyond what this run consumed belong to abandoned deeper
    // branches; drop them before advancing the odometer.
    stack.resize(std::min(stack.size(), st.consumed));
    while (!stack.empty() && stack.back() + 1 == opt.menu.size()) {
      stack.pop_back();
    }
    if (stack.empty()) {
      report.exhausted = true;
      break;
    }
    ++stack.back();
  }
  report.distinct_digests = digests.size();
  return report;
}

}  // namespace saf::check
