// The schedule explorer: sweeps a protocol across generated adversarial
// cases and collects invariant violations.
//
// Each seed deterministically maps to one (crash plan, delay adversary)
// case via generate_case(); a sweep over [first_seed, first_seed+seeds)
// is therefore exactly reproducible, and every reported violation can
// be re-run, shrunk (check/shrinker.h) or recorded (check/replay.h)
// from its seed alone.
#pragma once

#include <cstdint>
#include <vector>

#include "check/protocols.h"

namespace saf::check {

struct ExploreOptions {
  std::uint64_t first_seed = 1;
  int seeds = 100;
  /// Stop the sweep once this many violations have been collected.
  int max_violations = 16;
  /// Worker threads (sweep::ThreadPool); <= 0 picks hardware concurrency.
  /// The report is byte-identical to a jobs=1 sweep — outcomes are
  /// computed per seed and folded in seed order, including the
  /// max_violations early stop — parallelism only changes wall time.
  int jobs = 1;
};

struct Violation {
  ScheduleCase c;
  RunOutcome outcome;
};

struct ExploreReport {
  int runs = 0;
  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
};

/// Runs one case with the delivery digest and no other hooks.
RunOutcome run_case(const Protocol& p, const ScheduleCase& c);

/// Sweeps `opt.seeds` generated cases.
ExploreReport explore(const Protocol& p, const ExploreOptions& opt);

}  // namespace saf::check
