// The schedule explorer: sweeps a protocol across generated adversarial
// cases and collects invariant violations.
//
// Each seed deterministically maps to one (crash plan, delay adversary)
// case via generate_case(); a sweep over [first_seed, first_seed+seeds)
// is therefore exactly reproducible, and every reported violation can
// be re-run, shrunk (check/shrinker.h) or recorded (check/replay.h)
// from its seed alone.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "check/protocols.h"

namespace saf::check {

struct ExploreOptions {
  std::uint64_t first_seed = 1;
  int seeds = 100;
  /// Stop the sweep once this many violations have been collected.
  /// Under a fault spec only *failure* verdicts (VIOLATION_IN_MODEL,
  /// WORKER_ERROR) count toward the budget — explained out-of-model
  /// violations are expected witnesses, not stop conditions.
  int max_violations = 16;
  /// Worker threads (sweep::ThreadPool); <= 0 picks hardware concurrency.
  /// The report is byte-identical to a jobs=1 sweep — outcomes are
  /// computed per seed and folded in seed order, including the
  /// max_violations early stop — parallelism only changes wall time.
  int jobs = 1;
  /// Optional fault spec injected into every run (must outlive the
  /// sweep); null sweeps the clean model.
  const fault::FaultSpec* faults = nullptr;
  /// Per-run watchdog budgets, forwarded into RunContext (0 = off).
  std::uint64_t max_events = 0;
  std::int64_t wall_budget_ms = 0;
};

struct Violation {
  ScheduleCase c;
  RunOutcome outcome;
};

struct ExploreReport {
  int runs = 0;
  std::vector<Violation> violations;
  /// Verdict histogram, indexed by fault::Verdict. Without a fault spec
  /// every run lands in SAFE_IN_MODEL or VIOLATION_IN_MODEL.
  std::array<int, fault::kVerdictCount> verdicts{};

  bool clean() const { return violations.empty(); }
  int verdict_count(fault::Verdict v) const {
    return verdicts[static_cast<std::size_t>(v)];
  }
};

/// Runs one case with the delivery digest and no other hooks.
RunOutcome run_case(const Protocol& p, const ScheduleCase& c);

/// Runs one case under the sweep's fault / watchdog options.
RunOutcome run_case(const Protocol& p, const ScheduleCase& c,
                    const ExploreOptions& opt);

/// Sweeps `opt.seeds` generated cases.
ExploreReport explore(const Protocol& p, const ExploreOptions& opt);

}  // namespace saf::check
