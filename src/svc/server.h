// Long-lived k-set decision service: one live node serving an unbounded
// stream of pipelined agreement instances over the rt transport.
//
// Where rt/node.h runs a fixed count of keep-alive *rounds*, each in a
// fresh embedded simulator fenced by the link epoch, the service runs
// ONE long-lived simulator hosting a lazily growing pipeline of
// KSetCores — instance m+1 starts the moment m decides (the
// pipelining-by-decision design of core/repeated_kset, §3.2's repeated
// workload), messages are routed by their in-band instance tag, and the
// link runs with epoch gating OFF: the epoch field degrades into a pure
// *frontier signal* (each node stamps its decided-prefix length into
// every outgoing datagram header), which peers read to notice they have
// fallen behind.
//
// Three service-specific mechanisms sit on top:
//
//   * proposal batching — client submissions (svc/wire.h) queue between
//     decisions and fold into the NEXT instance's proposal via the
//     RepeatedKSetProcess::ProposalFn seam: one instance carries a whole
//     batch, so client load scales decisions/sec, not instances/client;
//   * snapshot catch-up — a node whose frontier trails the observed
//     peer frontier by more than NodeConfig::svc_jump_threshold (a
//     restarted node, or one that lost the race for a while) requests
//     the decided prefix wholesale (SnapReq/SnapResp) instead of
//     replaying instance by instance — the frontier-jump extension of
//     rt/node's epoch-frontier rejoin. Adopting a decided value is
//     always safe: decisions are final;
//   * restart recovery — the WAL (rt/chaos.h) persists only the
//     incarnation and the decided frontier (journaling an unbounded log
//     would rewrite O(m^2) bytes); the restarted life re-fetches the
//     prefix from peers via the same snapshot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/cluster.h"
#include "rt/node.h"
#include "rt/udp_link.h"
#include "util/types.h"

namespace saf::svc {

/// Outcome of one service node's run (the svc analogue of NodeResult).
struct ServerResult {
  bool ok = false;           ///< socket bound and the run completed
  std::uint64_t frontier = 0;  ///< contiguous decided instances
  std::uint64_t locally_decided = 0;  ///< instances this node ran itself
  std::uint64_t snapshot_adopted = 0;  ///< decisions adopted from SnapResp
  std::uint64_t snap_requests = 0;     ///< SnapReqs sent (catch-up rounds)
  std::uint64_t snaps_served = 0;      ///< SnapResp chunks served to peers
  std::uint64_t proposals_received = 0;  ///< client submissions accepted
  std::uint64_t proposals_served = 0;    ///< replies sent after decisions
  std::uint64_t batches = 0;  ///< instances that carried >= 1 submission
  std::uint64_t events_processed = 0;
  std::uint64_t heartbeats_sent = 0;
  Time total_elapsed_ms = 0;
  std::uint32_t incarnation = 0;
  ProcSet final_suspected;
  ProcSet final_trusted;
  rt::UdpLinkStats link_stats;
  /// The decided prefix itself (log[i] = instance i's decision).
  std::vector<std::int64_t> log;
  /// Proposal this node used for each locally run instance, aligned
  /// with instance ids via `proposal_instances`.
  std::vector<std::uint64_t> proposal_instances;
  std::vector<std::int64_t> proposals;
};

/// Runs one service node to the wall budget. cfg.protocol must be
/// "svc"; cfg.svc_client_slots / svc_jump_threshold / wal_path / faults
/// are honored as documented in rt/node.h.
ServerResult run_service_node(const rt::NodeConfig& cfg);

/// Child entry point for rt::ClusterConfig::node_runner: runs the node,
/// writes the result JSON to cfg.result_path, returns the exit code.
int run_server(const rt::NodeConfig& cfg);

/// Flat JSON of a service run — a superset of the node-result keys the
/// cluster launcher parses (decided/decision/incarnation/link stats),
/// plus the svc.* section (frontier, decided log, proposal log).
std::string server_result_json(const rt::NodeConfig& cfg,
                               const ServerResult& res);

/// Service contract over a finished cluster run, for
/// rt::ClusterConfig::contract_checker. Re-reads each node's result
/// JSON (rt::cluster_node_result_path) and checks, per instance:
///   * agreement — at most k distinct decided values across nodes;
///   * prefix    — every node's decided log is a contiguous prefix
///                 (no holes below its frontier);
///   * validity  — on kill-free runs, every decided value was proposed
///                 by some node for that instance (killed nodes lose
///                 their pre-restart proposal logs, so chaos runs skip
///                 this clause);
///   * progress  — some launched node decided at least one instance.
void check_service_contract(const rt::ClusterConfig& cfg,
                            rt::ClusterResult* res);

}  // namespace saf::svc
