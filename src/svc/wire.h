// Client/catch-up wire vocabulary of the decision service.
//
// Four payload shapes ride the same UdpLink reliable frames as the
// protocol traffic, in a type-id namespace disjoint from rt/codec's
// (which owns ids 1..10; svc ids start at 32), so a receiving loop can
// dispatch on the first byte:
//
//   * Submit   — client -> server: one proposal in the client's request
//                stream. The server folds queued submissions into the
//                next pipelined instance's proposal (batching) and
//                remembers (client, req_seq) so a timeout-driven
//                resubmission is answered, never re-proposed.
//   * Reply    — server -> client: the decided value of the instance
//                the submission's batch rode in, closing the client's
//                submit->decide latency measurement.
//   * SnapReq  — server -> server: a node whose decided frontier trails
//                the observed peer frontier (or that restarted) asks a
//                peer for the decided prefix from `from_instance` on.
//   * SnapResp — the decided-prefix chunk: `count` decisions for
//                instances [start, start+count), plus the responder's
//                frontier so the requester knows whether more chunks
//                are owed. Chunked to fit max_payload.
//
// Same discipline as rt/codec: fixed-width little-endian, bounds-checked
// decode, a malformed buffer decodes to nothing and is dropped.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace saf::svc {

/// First-byte type ids. Disjoint from rt/codec (1..10) by a wide margin
/// so future rt message types never collide.
inline constexpr std::uint8_t kSvcSubmit = 32;
inline constexpr std::uint8_t kSvcReply = 33;
inline constexpr std::uint8_t kSvcSnapReq = 34;
inline constexpr std::uint8_t kSvcSnapResp = 35;

/// True iff the payload's leading byte is in the svc id range — the
/// dispatch test a mixed receive loop applies before rt decode.
inline bool is_svc_payload(const std::uint8_t* data, std::size_t len) {
  return len >= 1 && data[0] >= kSvcSubmit && data[0] <= kSvcSnapResp;
}

struct Submit {
  std::uint64_t req_seq = 0;  ///< client-local request counter (from 1)
  std::int64_t value = 0;     ///< proposed value
};

struct Reply {
  std::uint64_t req_seq = 0;   ///< echoes the submission it answers
  std::uint64_t instance = 0;  ///< instance the batch rode in
  std::int64_t decision = 0;   ///< that instance's decided value
};

struct SnapReq {
  std::uint64_t from_instance = 0;  ///< requester's decided frontier
};

/// Decisions for instances [start, start + decisions.size()).
struct SnapResp {
  std::uint64_t start = 0;
  std::uint64_t frontier = 0;  ///< responder's decided frontier
  std::vector<std::int64_t> decisions;
};

/// Decisions per SnapResp chunk: 100 * 8 bytes of values + the fixed
/// header stays well under UdpLinkParams::max_payload (1200).
inline constexpr std::size_t kSnapChunk = 100;

void encode_submit(const Submit& m, std::vector<std::uint8_t>* out);
void encode_reply(const Reply& m, std::vector<std::uint8_t>* out);
void encode_snap_req(const SnapReq& m, std::vector<std::uint8_t>* out);
void encode_snap_resp(const SnapResp& m, std::vector<std::uint8_t>* out);

/// Each returns true iff `data` is exactly one well-formed message of
/// that type (leading byte + exact length + sane counts).
bool decode_submit(const std::uint8_t* data, std::size_t len, Submit* out);
bool decode_reply(const std::uint8_t* data, std::size_t len, Reply* out);
bool decode_snap_req(const std::uint8_t* data, std::size_t len, SnapReq* out);
bool decode_snap_resp(const std::uint8_t* data, std::size_t len,
                      SnapResp* out);

}  // namespace saf::svc
