#include "svc/wire.h"

namespace saf::svc {

namespace {

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t get_i64(const std::uint8_t* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void encode_submit(const Submit& m, std::vector<std::uint8_t>* out) {
  out->push_back(kSvcSubmit);
  put_u64(out, m.req_seq);
  put_i64(out, m.value);
}

bool decode_submit(const std::uint8_t* data, std::size_t len, Submit* out) {
  if (len != 1 + 8 + 8 || data[0] != kSvcSubmit) return false;
  out->req_seq = get_u64(data + 1);
  out->value = get_i64(data + 9);
  return true;
}

void encode_reply(const Reply& m, std::vector<std::uint8_t>* out) {
  out->push_back(kSvcReply);
  put_u64(out, m.req_seq);
  put_u64(out, m.instance);
  put_i64(out, m.decision);
}

bool decode_reply(const std::uint8_t* data, std::size_t len, Reply* out) {
  if (len != 1 + 8 + 8 + 8 || data[0] != kSvcReply) return false;
  out->req_seq = get_u64(data + 1);
  out->instance = get_u64(data + 9);
  out->decision = get_i64(data + 17);
  return true;
}

void encode_snap_req(const SnapReq& m, std::vector<std::uint8_t>* out) {
  out->push_back(kSvcSnapReq);
  put_u64(out, m.from_instance);
}

bool decode_snap_req(const std::uint8_t* data, std::size_t len,
                     SnapReq* out) {
  if (len != 1 + 8 || data[0] != kSvcSnapReq) return false;
  out->from_instance = get_u64(data + 1);
  return true;
}

void encode_snap_resp(const SnapResp& m, std::vector<std::uint8_t>* out) {
  out->push_back(kSvcSnapResp);
  put_u64(out, m.start);
  put_u64(out, m.frontier);
  put_u32(out, static_cast<std::uint32_t>(m.decisions.size()));
  for (std::int64_t v : m.decisions) put_i64(out, v);
}

bool decode_snap_resp(const std::uint8_t* data, std::size_t len,
                      SnapResp* out) {
  constexpr std::size_t kHeader = 1 + 8 + 8 + 4;
  if (len < kHeader || data[0] != kSvcSnapResp) return false;
  const std::uint32_t count = get_u32(data + 17);
  // Exact length, and a count bound rejecting absurd headers before the
  // multiply (kSnapChunk is the encoder's ceiling).
  if (count > kSnapChunk || len != kHeader + 8 * count) return false;
  out->start = get_u64(data + 1);
  out->frontier = get_u64(data + 9);
  out->decisions.clear();
  out->decisions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out->decisions.push_back(get_i64(data + kHeader + 8 * i));
  }
  return true;
}

}  // namespace saf::svc
