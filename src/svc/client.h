// Client tier of the decision service: hundreds of closed-loop clients
// submitting proposal streams to the server nodes over UdpLink.
//
// Each client owns one link endpoint (id n + slot, port base_port +
// n + slot) and runs a closed loop: submit one value, wait for the
// Reply that carries the decided value of the instance its batch rode
// in, record the submit->decide latency, submit the next. One OS
// process multiplexes the whole tier over a single epoll set — the
// client side is deliberately thin (no simulator, no coroutines), so a
// tier of hundreds costs one thread.
//
// Failure handling mirrors what a real service client does:
//   * the link retransmits the Submit frame itself, so a lost datagram
//     needs no client logic;
//   * a server that dies with the submission queued (batched but not
//     yet decided) answers nothing — after resubmit_ms the client
//     re-submits the SAME req_seq to the next server (rotating
//     targets). Servers dedup on (slot, req_seq), so a request that
//     ends up folded by two servers is decided-and-answered twice with
//     the client taking the first reply — duplicate service, never
//     duplicate state;
//   * churn: a client whose life exceeds churn_lifetime_ms tears its
//     link down and comes back with a bumped link incarnation (the
//     wire-level fencing path real reconnects take), keeping its
//     req_seq monotone across lives so the server's per-slot dedup
//     stays sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/udp_link.h"
#include "util/types.h"

namespace saf::svc {

struct ClientTierConfig {
  int n = 5;  ///< server count; slot s submits to server (s + retries) % n
  std::uint16_t base_port = 47400;
  /// Slots this tier drives: absolute indices first_slot ..
  /// first_slot+clients-1 within the servers' svc_client_slots space.
  /// Several tier processes can split the space.
  int first_slot = 0;
  int clients = 100;
  /// Servers' NodeConfig::svc_client_slots — must match so every link
  /// sizes its peer table identically (endpoints = n + total_slots).
  int total_slots = 256;
  Time run_for_ms = 10'000;
  /// Re-submit the outstanding request (to the next server) after this
  /// long without a reply.
  Time resubmit_ms = 1'000;
  /// Tear down + re-create each client's link after this long (0 = no
  /// churn). Lifetimes are staggered per slot so the tier never churns
  /// in lockstep.
  Time churn_lifetime_ms = 0;
  std::uint64_t seed = 1;
  rt::UdpLinkParams link;  ///< endpoints/epoch_gating are overridden
};

struct ClientRunResult {
  bool ok = false;  ///< every client link bound
  std::uint64_t submitted = 0;   ///< distinct requests started
  std::uint64_t replies = 0;     ///< requests answered
  std::uint64_t resubmits = 0;   ///< timeout-driven re-submissions
  std::uint64_t churns = 0;      ///< link teardown/rebirth cycles
  std::uint64_t outstanding = 0;  ///< unanswered at shutdown
  Time elapsed_ms = 0;
  /// One submit->reply latency per answered request, in milliseconds
  /// (monotonic clock, sub-ms resolution), in completion order.
  std::vector<double> latencies_ms;
};

/// Runs the tier for cfg.run_for_ms and returns the merged outcome.
ClientRunResult run_client_tier(const ClientTierConfig& cfg);

/// Aggregate JSON (counts, throughput, latency percentiles) — the
/// svc_client CLI's output. Latency percentiles are computed here;
/// the raw array is not emitted.
std::string client_result_json(const ClientTierConfig& cfg,
                               const ClientRunResult& res);

/// p-th percentile (0..100) of `values` by nearest-rank; 0 when empty.
/// Exposed for the service bench, which merges several tiers' latency
/// arrays before ranking.
double latency_percentile(std::vector<double> values, double p);

}  // namespace saf::svc
