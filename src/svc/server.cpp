#include "svc/server.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/kset_agreement.h"
#include "fault/fault_spec.h"
#include "fault/link_faults.h"
#include "fd/oracle.h"
#include "rt/chaos.h"
#include "rt/clock.h"
#include "rt/codec.h"
#include "rt/heartbeat_fd.h"
#include "rt/node_loop.h"
#include "sim/delay_policy.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "svc/wire.h"
#include "sweep/bench_json.h"
#include "trace/trace.h"
#include "util/check.h"

namespace saf::svc {

namespace {

/// Buffered-traffic horizon: phase messages for instances this far past
/// the pipeline head are dropped instead of buffered. Dropping is
/// live-safe — the instance's decision still arrives via reliable
/// broadcast, and a gap wider than the jump threshold is exactly what
/// snapshot catch-up exists for.
constexpr int kFutureWindow = 256;

/// SnapResp chunks answered per SnapReq. The requester re-requests from
/// its new frontier after adopting, so this bounds per-request burst
/// size (flow control), not total catch-up.
constexpr int kSnapChunksPerReq = 4;

/// Wall milliseconds between snapshot requests while behind.
constexpr Time kSnapRetryMs = 200;

/// The one real protocol process of a service node: an unbounded
/// pipeline of KSetCores over a single embedded simulator.
///
/// Routing invariants:
///   * driver() runs instances strictly in order; when it sits at
///     instance m, every instance below m is decided (frontier_ == m).
///   * A decision can arrive for ANY instance at any point — from this
///     node's own core, a peer's reliable-broadcast DecisionMsg, or a
///     snapshot — and always lands in record(): out-of-order decisions
///     park in decided_map_ until the prefix below them fills in.
///   * Phase traffic for instances the driver has not reached yet is
///     buffered (arena-owned pointers, so parking them is free) and
///     replayed into the core the moment it exists — the per-instance
///     buffering that makes pipelining-by-decision safe under wire
///     reordering (same design as core/repeated_kset, which proves it
///     in-simulator).
///
/// Completed cores are never pruned: KSetCore::main() terminates once
/// decided, so a finished instance costs memory, not cycles.
class ServiceProcess final : public sim::Process {
 public:
  /// Proposal source for instance m (the batching seam).
  using FoldFn = std::function<std::int64_t(int instance)>;
  /// Fired exactly once per instance, in log order, as the contiguous
  /// decided prefix extends past it.
  using DecideFn = std::function<void(int instance, std::int64_t value)>;

  ServiceProcess(ProcessId id, int n, int t, const fd::LeaderOracle& omega,
                 FoldFn fold, DecideFn on_decide)
      : Process(id, n, t),
        omega_(omega),
        fold_(std::move(fold)),
        on_decide_(std::move(on_decide)) {}

  void boot() override { spawn(driver()); }

  void on_message(const sim::Message& m) override {
    const int inst = instance_of(m);
    if (inst < 0) return;
    if (auto it = cores_.find(inst); it != cores_.end()) {
      it->second->on_message(m);
      return;
    }
    if (inst >= next_ && inst < next_ + kFutureWindow) {
      future_[inst].push_back(&m);  // arena-owned: outlives the buffer
    }
    // Below next_ with no core: the instance was adopted before it ran
    // locally and its decision is final — drop the straggler.
  }

  void on_rdeliver(const sim::Message& m) override {
    const auto* d = dynamic_cast<const core::DecisionMsg*>(&m);
    if (d != nullptr && d->instance >= 0) {
      record(d->instance, d->value, /*from_snapshot=*/false);
    }
  }

  /// Snapshot adoption: decisions for instances [start, start+n), from
  /// a peer's SnapResp. Returns how many were news to this node. Safe
  /// at any point — decisions are final, so adopting over a still-
  /// running core just finishes it early.
  int adopt(std::uint64_t start, const std::vector<std::int64_t>& vals) {
    int fresh = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const auto inst = static_cast<int>(start + i);
      if (inst < frontier_ || decided_map_.count(inst) != 0) continue;
      record(inst, vals[i], /*from_snapshot=*/true);
      ++fresh;
    }
    return fresh;
  }

  /// Contiguous decided prefix length (== log().size()).
  int frontier() const { return frontier_; }
  const std::vector<std::int64_t>& log() const { return log_; }
  std::uint64_t locally_decided() const { return locally_decided_; }

 private:
  static int instance_of(const sim::Message& m) {
    if (const auto* p1 = dynamic_cast<const core::Phase1Msg*>(&m)) {
      return p1->instance;
    }
    if (const auto* p2 = dynamic_cast<const core::Phase2Msg*>(&m)) {
      return p2->instance;
    }
    return -1;
  }

  /// Task T1 of the pipeline: run instance m the moment everything
  /// below it is decided; skip instances that decided without us.
  sim::ProtocolTask driver() {
    for (;;) {
      const int m = next_;
      if (frontier_ > m) {
        next_ = frontier_;  // decided behind our back (RB or snapshot)
        continue;
      }
      auto owned = std::make_unique<core::KSetCore>(*this, omega_,
                                                    fold_(m), m);
      core::KSetCore* c = owned.get();
      cores_.emplace(m, std::move(owned));
      spawn(c->main());
      if (auto it = future_.find(m); it != future_.end()) {
        for (const sim::Message* fm : it->second) c->on_message(*fm);
        future_.erase(it);
      }
      co_await until([this, m, c] { return frontier_ > m || c->decided(); });
      ++next_;
    }
  }

  void record(int inst, std::int64_t v, bool from_snapshot) {
    if (inst < frontier_ || decided_map_.count(inst) != 0) return;
    // A still-running core learns its decision as a synthesized
    // DecisionMsg — the exact message reliable broadcast would have
    // delivered — so its main() terminates instead of idling forever
    // in a phase wait for an instance the cluster already closed.
    if (auto it = cores_.find(inst);
        it != cores_.end() && !it->second->decided()) {
      const core::DecisionMsg dm(v, inst);
      it->second->on_rdeliver(dm);
    }
    decided_map_[inst] = v;
    if (from_snapshot) {
      ++adopted_;
    } else {
      ++locally_decided_;
    }
    advance_log();
  }

  void advance_log() {
    auto it = decided_map_.find(frontier_);
    while (it != decided_map_.end()) {
      const int inst = frontier_;
      log_.push_back(it->second);
      decided_map_.erase(it);
      future_.erase(inst);
      ++frontier_;
      if (on_decide_) on_decide_(inst, log_.back());
      it = decided_map_.find(frontier_);
    }
  }

  const fd::LeaderOracle& omega_;
  FoldFn fold_;
  DecideFn on_decide_;
  std::map<int, std::unique_ptr<core::KSetCore>> cores_;
  int next_ = 0;      ///< next instance the driver will run
  int frontier_ = 0;  ///< contiguous decided prefix length
  std::vector<std::int64_t> log_;
  std::map<int, std::int64_t> decided_map_;  ///< decided above frontier_
  std::map<int, std::vector<const sim::Message*>> future_;
  std::uint64_t locally_decided_ = 0;
  std::uint64_t adopted_ = 0;
};

}  // namespace

ServerResult run_service_node(const rt::NodeConfig& cfg) {
  SAF_CHECK(cfg.id >= 0 && cfg.id < cfg.n);
  SAF_CHECK(cfg.protocol == "svc");
  SAF_CHECK(cfg.svc_client_slots >= 0);
  SAF_CHECK(cfg.svc_jump_threshold >= 1);
  ServerResult res;

  // Crash recovery, same discipline as rt/node: load + bump + persist
  // before any wire activity. The service journals only the frontier —
  // the decided log comes back from peers via snapshot, and the
  // persisted frontier witnesses that the rejoin was a jump.
  rt::NodeWal wal;
  const bool wal_enabled = !cfg.wal_path.empty();
  if (wal_enabled) {
    if (rt::load_node_wal(cfg.wal_path, &wal)) wal.incarnation += 1;
    rt::store_node_wal(cfg.wal_path, wal);
  }
  res.incarnation = wal.incarnation;

  rt::WallClock wall;
  rt::UdpLinkParams link_params = cfg.link;
  link_params.incarnation = wal.incarnation;
  link_params.endpoints = cfg.n + cfg.svc_client_slots;
  // Pipelined instances interleave on the wire, so the epoch field
  // cannot gate delivery; it is repurposed as the decided-frontier
  // signal (set_epoch(frontier) on every decision, read back through
  // max_peer_epoch on the far side).
  link_params.epoch_gating = false;
  rt::UdpLink link(cfg.id, cfg.n, cfg.base_port, wall, link_params);
  if (!link.ok()) return res;  // port collision: ok stays false

  // Chaos link faults on the real transport (same seam as rt/node).
  std::unique_ptr<util::Arena> fault_arena;
  std::unique_ptr<fault::LinkFaultModel> fault_model;
  if (!cfg.faults.empty()) {
    const fault::FaultSpec fspec = fault::parse_fault_spec(cfg.faults);
    if (fspec.link.any()) {
      fault_arena = std::make_unique<util::Arena>();
      fault_model = std::make_unique<fault::LinkFaultModel>(
          fspec.link, cfg.n,
          cfg.fault_seed != 0 ? cfg.fault_seed : cfg.seed, *fault_arena);
      link.set_fault_hook(fault_model.get());
    }
  }

  rt::HeartbeatMonitor monitor(cfg.id, cfg.n, wall, cfg.hb);
  rt::HeartbeatOmega omega(monitor, cfg.k);

  std::ofstream trace_out;
  std::unique_ptr<trace::JsonlSink> sink;
  trace::MetricsRegistry metrics;
  if (!cfg.trace_path.empty()) {
    if (wal.incarnation > 0) {
      trace_out.open(cfg.trace_path, std::ios::app);
      trace_out << "\n";
    } else {
      trace_out.open(cfg.trace_path);
    }
    sink = std::make_unique<trace::JsonlSink>(trace_out);
  }

  // ONE long-lived simulator for the whole run (rt/node builds one per
  // round; the service's rounds are instances inside this one).
  sim::SimConfig scfg;
  scfg.seed = cfg.seed;
  scfg.n = cfg.n;
  scfg.t = cfg.t;
  scfg.tick_period = cfg.tick_period;
  scfg.horizon = cfg.run_for_ms + cfg.linger_ms + 1000;
  scfg.batched_broadcasts = cfg.batched_broadcasts;
  sim::Simulator sim(scfg, sim::CrashPlan{},
                     std::make_unique<sim::FixedDelay>(1));
  if (sink != nullptr || !cfg.metrics_path.empty()) {
    sim.set_trace(sink.get(), &metrics);
  }

  // -------------------------------------------------------------------
  // Client bookkeeping (link ids n .. n+slots-1).
  struct PendingSubmit {
    ProcessId client = -1;
    std::uint64_t req_seq = 0;
    std::int64_t value = 0;
  };
  struct ClientSlot {
    std::uint64_t last_req = 0;  ///< newest req_seq accepted or served
    std::uint64_t served_req = 0;
    std::uint64_t served_instance = 0;
    std::int64_t served_value = 0;
    bool have_served = false;
  };
  std::vector<ClientSlot> slots(
      static_cast<std::size_t>(cfg.svc_client_slots));
  std::vector<PendingSubmit> pending;       ///< queued for the next fold
  std::map<int, std::vector<PendingSubmit>> batches;  ///< in-flight
  std::vector<std::uint8_t> buf;

  // Proposal batching: the whole queued backlog rides the next
  // instance (the proposal value is the head submission's; the rest of
  // the batch is answered by the same decision).
  const auto fold = [&](int inst) -> std::int64_t {
    std::int64_t v = 0;
    if (pending.empty()) {
      v = 100 + cfg.id;  // idle default, same convention as rt/node
    } else {
      v = pending.front().value;
      batches[inst] = std::move(pending);
      pending.clear();
      ++res.batches;
    }
    res.proposal_instances.push_back(static_cast<std::uint64_t>(inst));
    res.proposals.push_back(v);
    return v;
  };

  const auto on_decide = [&](int inst, std::int64_t value) {
    // The datagram-header epoch now advertises the new frontier.
    link.set_epoch(static_cast<std::uint32_t>(inst + 1));
    // Frontier persistence is forensic (adoption re-derives the log
    // from peers), so throttle the tmp+rename writes; the final store
    // after the loop pins the exact value.
    if (wal_enabled && (inst + 1) % 16 == 0) {
      wal.svc_frontier = static_cast<std::uint64_t>(inst + 1);
      rt::store_node_wal(cfg.wal_path, wal);
    }
    if (auto it = batches.find(inst); it != batches.end()) {
      for (const PendingSubmit& s : it->second) {
        Reply rp;
        rp.req_seq = s.req_seq;
        rp.instance = static_cast<std::uint64_t>(inst);
        rp.decision = value;
        buf.clear();
        encode_reply(rp, &buf);
        link.send(s.client, buf);
        ClientSlot& cs = slots[static_cast<std::size_t>(s.client - cfg.n)];
        cs.have_served = true;
        cs.served_req = s.req_seq;
        cs.served_instance = static_cast<std::uint64_t>(inst);
        cs.served_value = value;
        ++res.proposals_served;
      }
      batches.erase(it);
    }
  };

  ServiceProcess* proc = nullptr;
  for (ProcessId pid = 0; pid < cfg.n; ++pid) {
    if (pid != cfg.id) {
      sim.add_process(std::make_unique<rt::RemoteStub>(pid, cfg.n, cfg.t));
    } else {
      auto p = std::make_unique<ServiceProcess>(pid, cfg.n, cfg.t, omega,
                                                fold, on_decide);
      proc = p.get();
      sim.add_process(std::move(p));
    }
  }

  rt::RtBridge bridge(cfg.id, link);
  sim.network().set_remote_hook(&bridge);

  // -------------------------------------------------------------------
  // svc payload dispatch (runs inside link.poll's deliver callback,
  // outside the simulator).
  bool poke = false;  ///< adoption advanced state the sim can't see yet
  const auto handle_svc = [&](ProcessId from, const std::uint8_t* data,
                              std::size_t len) {
    Submit sm;
    if (decode_submit(data, len, &sm)) {
      if (from < cfg.n || from >= cfg.n + cfg.svc_client_slots) return;
      ClientSlot& cs = slots[static_cast<std::size_t>(from - cfg.n)];
      if (cs.have_served && sm.req_seq == cs.served_req) {
        // Resubmission of an answered request (the reply got lost):
        // answer from the cache, never re-propose.
        Reply rp;
        rp.req_seq = cs.served_req;
        rp.instance = cs.served_instance;
        rp.decision = cs.served_value;
        buf.clear();
        encode_reply(rp, &buf);
        link.send(from, buf);
        return;
      }
      if (sm.req_seq <= cs.last_req) return;  // in-flight duplicate
      cs.last_req = sm.req_seq;
      pending.push_back(PendingSubmit{from, sm.req_seq, sm.value});
      ++res.proposals_received;
      return;
    }
    SnapReq rq;
    if (decode_snap_req(data, len, &rq)) {
      if (from < 0 || from >= cfg.n || from == cfg.id) return;
      const std::vector<std::int64_t>& log = proc->log();
      std::uint64_t at = rq.from_instance;
      int chunk = 0;
      while (at < log.size() && chunk < kSnapChunksPerReq) {
        SnapResp out;
        out.start = at;
        out.frontier = log.size();
        const auto cnt = static_cast<std::ptrdiff_t>(std::min<std::uint64_t>(
            kSnapChunk, log.size() - at));
        const auto base = log.begin() + static_cast<std::ptrdiff_t>(at);
        out.decisions.assign(base, base + cnt);
        buf.clear();
        encode_snap_resp(out, &buf);
        link.send(from, buf);
        at += static_cast<std::uint64_t>(cnt);
        ++chunk;
        ++res.snaps_served;
      }
      return;
    }
    SnapResp sr;
    if (decode_snap_resp(data, len, &sr)) {
      if (from < 0 || from >= cfg.n) return;
      const int fresh = proc->adopt(sr.start, sr.decisions);
      if (fresh > 0) {
        res.snapshot_adopted += static_cast<std::uint64_t>(fresh);
        poke = true;
      }
      return;
    }
  };

  const rt::UdpLink::DeliverFn deliver = [&](ProcessId from,
                                             const std::uint8_t* data,
                                             std::size_t len) {
    std::uint64_t seq = 0;
    if (rt::decode_heartbeat(data, len, &seq)) {
      // Only protocol peers feed the detector (clients never send
      // heartbeats, but the monitor's table is sized n — guard anyway).
      if (from >= 0 && from < cfg.n) monitor.on_heartbeat(from);
      return;
    }
    if (is_svc_payload(data, len)) {
      handle_svc(from, data, len);
      return;
    }
    const sim::Message* m = rt::decode_message(data, len, sim.arena());
    if (m != nullptr) sim.inject_deliver(cfg.id, m);
  };

  rt::Waiter waiter(link.fd());

  std::uint64_t hb_seq = 0;
  const Time start = wall.now_ms();
  const Time end_at = start + cfg.run_for_ms + cfg.linger_ms;
  Time next_snap_at = 0;
  int snap_rotor = (cfg.id + 1) % cfg.n;  // next catch-up target

  for (;;) {
    const Time now = wall.now_ms();
    if (now >= end_at) break;
    if (monitor.heartbeat_due()) {
      const std::vector<std::uint8_t> hb = rt::encode_heartbeat(hb_seq++);
      for (ProcessId pid = 0; pid < cfg.n; ++pid) {
        if (pid != cfg.id) link.send_unreliable(pid, hb);
      }
      ++res.heartbeats_sent;
    }
    poke = false;
    link.poll(deliver);
    if (poke) {
      // A snapshot adoption advanced the frontier outside the
      // simulator; inject a no-op delivery (instance -1 routes
      // nowhere) so the driver's wait predicate re-checks this pump,
      // not at the next global tick.
      sim.inject_deliver(cfg.id,
                         sim.arena().create<core::DecisionMsg>(0, -1));
    }
    monitor.tick();
    link.maintain();
    sim.pump(now - start);

    // Snapshot catch-up trigger: the observed peer frontier (epoch
    // field of incoming datagrams) says the cluster has moved on.
    const auto my_frontier = static_cast<std::uint64_t>(proc->frontier());
    if (link.max_peer_epoch() >
            my_frontier + static_cast<std::uint64_t>(cfg.svc_jump_threshold) &&
        now >= next_snap_at) {
      const ProcSet suspected = monitor.suspected_now();
      ProcessId target = -1;
      ProcessId fallback = -1;
      for (int step = 0; step < cfg.n; ++step) {
        const auto cand = static_cast<ProcessId>(snap_rotor);
        snap_rotor = (snap_rotor + 1) % cfg.n;
        if (cand == cfg.id) continue;
        if (fallback < 0) fallback = cand;
        if (!suspected.contains(cand)) {
          target = cand;
          break;
        }
      }
      if (target < 0) target = fallback;
      if (target >= 0) {
        SnapReq rq;
        rq.from_instance = my_frontier;
        buf.clear();
        encode_snap_req(rq, &buf);
        link.send(target, buf);
        ++res.snap_requests;
        next_snap_at = now + kSnapRetryMs;
      }
    }

    Time deadline = end_at;
    const auto consider = [&deadline](Time at) {
      if (at != kNeverTime && at < deadline) deadline = at;
    };
    consider(monitor.next_heartbeat_at());
    consider(link.next_due());
    const Time sim_next = sim.next_event_time();
    if (sim_next != kNeverTime) consider(start + sim_next);
    if (next_snap_at > now) consider(next_snap_at);
    waiter.wait(link, deadline - wall.now_ms());
  }

  res.ok = true;
  res.frontier = static_cast<std::uint64_t>(proc->frontier());
  res.locally_decided = proc->locally_decided();
  res.log = proc->log();
  res.total_elapsed_ms = wall.now_ms() - start;
  res.final_suspected = monitor.suspected_now();
  res.final_trusted = omega.trusted(cfg.id, wall.now_ms());
  res.events_processed = sim.events_processed();
  res.link_stats = link.stats();
  if (wal_enabled) {
    wal.svc_frontier = res.frontier;
    rt::store_node_wal(cfg.wal_path, wal);
  }
  if (!cfg.metrics_path.empty()) {
    sweep::write_file_atomic(cfg.metrics_path, metrics.to_json());
  }
  if (!cfg.result_path.empty()) {
    sweep::write_file_atomic(cfg.result_path,
                             server_result_json(cfg, res));
  }
  return res;
}

int run_server(const rt::NodeConfig& cfg) {
  const ServerResult res = run_service_node(cfg);
  return res.ok ? 0 : 1;
}

std::string server_result_json(const rt::NodeConfig& cfg,
                               const ServerResult& res) {
  sweep::JsonWriter w;
  w.begin_object();
  // Node-compatible prefix: what the cluster launcher's parser reads
  // (missing keys default to 0 on its side — rounds in particular).
  w.key("id").value(static_cast<std::int64_t>(cfg.id));
  w.key("protocol").value(cfg.protocol);
  w.key("ok").value(res.ok);
  w.key("decided").value(res.frontier > 0);
  w.key("decision").value(res.log.empty() ? INT64_MIN : res.log.back());
  w.key("final_suspected_mask")
      .value(static_cast<std::uint64_t>(res.final_suspected.mask()));
  w.key("final_trusted_mask")
      .value(static_cast<std::uint64_t>(res.final_trusted.mask()));
  w.key("incarnation").value(static_cast<std::uint64_t>(res.incarnation));
  w.key("events_processed").value(res.events_processed);
  w.key("heartbeats_sent").value(res.heartbeats_sent);
  w.key("total_elapsed_ms")
      .value(static_cast<std::int64_t>(res.total_elapsed_ms));
  // Service section.
  w.key("svc_frontier").value(res.frontier);
  w.key("svc_locally_decided").value(res.locally_decided);
  w.key("svc_snapshot_adopted").value(res.snapshot_adopted);
  w.key("svc_snap_requests").value(res.snap_requests);
  w.key("svc_snaps_served").value(res.snaps_served);
  w.key("svc_proposals_received").value(res.proposals_received);
  w.key("svc_proposals_served").value(res.proposals_served);
  w.key("svc_batches").value(res.batches);
  w.key("svc_decisions").begin_array();
  for (std::int64_t v : res.log) w.value(v);
  w.end_array();
  w.key("svc_proposal_instances").begin_array();
  for (std::uint64_t i : res.proposal_instances) w.value(i);
  w.end_array();
  w.key("svc_proposal_values").begin_array();
  for (std::int64_t v : res.proposals) w.value(v);
  w.end_array();
  // Link stats, same keys as node_result_json.
  w.key("datagrams_sent").value(res.link_stats.datagrams_sent);
  w.key("datagrams_received").value(res.link_stats.datagrams_received);
  w.key("frames_sent").value(res.link_stats.frames_sent);
  w.key("frames_received").value(res.link_stats.frames_received);
  w.key("syscalls_send").value(res.link_stats.syscalls_send);
  w.key("syscalls_recv").value(res.link_stats.syscalls_recv);
  w.key("retransmits").value(res.link_stats.retransmits);
  w.key("dups_dropped").value(res.link_stats.dups_dropped);
  w.key("stale_dropped").value(res.link_stats.stale_dropped);
  w.key("acks_sent").value(res.link_stats.acks_sent);
  w.key("window_stalls").value(res.link_stats.window_stalls);
  w.key("abandoned").value(res.link_stats.abandoned);
  w.key("stale_inc_dropped").value(res.link_stats.stale_inc_dropped);
  w.key("peer_restarts").value(res.link_stats.peer_restarts);
  w.end_object();
  return w.str();
}

void check_service_contract(const rt::ClusterConfig& cfg,
                            rt::ClusterResult* res) {
  constexpr std::size_t kMaxViolations = 8;
  const auto violation = [&](std::string msg) {
    if (res->violations.size() < kMaxViolations) {
      res->violations.push_back(std::move(msg));
    }
  };

  std::map<std::uint64_t, std::set<std::int64_t>> decided;
  std::map<std::uint64_t, std::set<std::int64_t>> proposed;
  std::uint64_t max_frontier = 0;
  bool any_loaded = false;

  for (const rt::ClusterNodeOutcome& node : res->nodes) {
    if (!node.launched) continue;
    sweep::FlatJson j;
    try {
      j = sweep::load_json_numbers(
          rt::cluster_node_result_path(cfg, node.id));
    } catch (const std::exception&) {
      continue;  // a killed-and-never-restarted node leaves no result
    }
    any_loaded = true;
    const auto get = [&](const std::string& k) -> double {
      const auto it = j.find(k);
      return it == j.end() ? 0.0 : it->second;
    };
    const auto frontier = static_cast<std::uint64_t>(get("svc_frontier"));
    max_frontier = std::max(max_frontier, frontier);
    for (std::uint64_t i = 0; i < frontier; ++i) {
      const auto it = j.find("svc_decisions." + std::to_string(i));
      if (it == j.end()) {
        violation("svc prefix: node " + std::to_string(node.id) +
                  " frontier " + std::to_string(frontier) +
                  " has a hole at instance " + std::to_string(i));
        break;
      }
      decided[i].insert(static_cast<std::int64_t>(it->second));
    }
    for (std::uint64_t i = 0;; ++i) {
      const auto ii =
          j.find("svc_proposal_instances." + std::to_string(i));
      const auto vv = j.find("svc_proposal_values." + std::to_string(i));
      if (ii == j.end() || vv == j.end()) break;
      proposed[static_cast<std::uint64_t>(ii->second)].insert(
          static_cast<std::int64_t>(vv->second));
    }
  }

  int max_distinct = 0;
  for (const auto& [inst, vals] : decided) {
    max_distinct = std::max(max_distinct, static_cast<int>(vals.size()));
    if (static_cast<int>(vals.size()) > cfg.k) {
      violation("svc agreement: instance " + std::to_string(inst) +
                " decided " + std::to_string(vals.size()) +
                " distinct values (k=" + std::to_string(cfg.k) + ")");
    }
  }
  // Validity is only checkable when every proposal log survived: a
  // SIGKILLed node's pre-restart proposals are gone with the life that
  // made them, and injected faults can strand a batch's proposer.
  if (cfg.chaos.kills == 0 && cfg.chaos.faults.empty()) {
    for (const auto& [inst, vals] : decided) {
      const auto pit = proposed.find(inst);
      for (const std::int64_t v : vals) {
        if (pit == proposed.end() || pit->second.count(v) == 0) {
          violation("svc validity: instance " + std::to_string(inst) +
                    " decided " + std::to_string(v) +
                    ", which no node proposed");
        }
      }
    }
  }
  if (any_loaded && max_frontier == 0) {
    violation("svc progress: no node decided any instance");
  }
  res->distinct_decided = max_distinct;
  if (!res->violations.empty() && res->detail.empty()) {
    res->detail = res->violations.front();
  }
}

}  // namespace saf::svc
