#include "svc/client.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "rt/clock.h"
#include "svc/wire.h"
#include "sweep/bench_json.h"
#include "util/check.h"

namespace saf::svc {

namespace {

/// Latency cap: a tier is a measurement tool, not a log sink.
constexpr std::size_t kMaxLatencies = std::size_t{1} << 22;

/// Monotonic milliseconds with sub-ms resolution (latencies need finer
/// grain than WallClock's Time).
double steady_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

struct Client {
  int slot = 0;  ///< absolute slot index (link id = n + slot)
  std::unique_ptr<rt::UdpLink> link;
  std::uint32_t life = 0;  ///< link incarnation; bumped per churn cycle
  Time churn_at = kNeverTime;
  std::uint64_t req_seq = 0;  ///< monotone across lives (dedup key)
  std::int64_t value = 0;
  bool outstanding = false;
  double first_submit_at = 0;  ///< latency anchor (first attempt)
  double last_submit_at = 0;   ///< resubmit-timeout anchor
  int attempts = 0;            ///< resubmits of the current request
  ProcessId target = 0;
};

}  // namespace

ClientRunResult run_client_tier(const ClientTierConfig& cfg) {
  SAF_CHECK(cfg.n >= 1);
  SAF_CHECK(cfg.clients >= 1);
  SAF_CHECK(cfg.first_slot >= 0);
  SAF_CHECK(cfg.first_slot + cfg.clients <= cfg.total_slots);
  ClientRunResult res;

  rt::WallClock wall;
  rt::UdpLinkParams lp = cfg.link;
  lp.endpoints = cfg.n + cfg.total_slots;
  lp.epoch_gating = false;

  const int ep = epoll_create1(0);
  if (ep < 0) return res;

  std::vector<Client> clients(static_cast<std::size_t>(cfg.clients));

  const auto make_link = [&](Client& c, std::uint32_t idx) -> bool {
    rt::UdpLinkParams p = lp;
    p.incarnation = c.life;
    c.link = std::make_unique<rt::UdpLink>(
        static_cast<ProcessId>(cfg.n + c.slot), cfg.n, cfg.base_port, wall,
        p);
    if (!c.link->ok()) {
      c.link.reset();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = idx;
    epoll_ctl(ep, EPOLL_CTL_ADD, c.link->fd(), &ev);
    return true;
  };

  const auto send_current = [&](Client& c) {
    Submit sm;
    sm.req_seq = c.req_seq;
    sm.value = c.value;
    std::vector<std::uint8_t> buf;
    encode_submit(sm, &buf);
    c.link->send(c.target, buf);
    c.last_submit_at = steady_ms();
  };

  const auto start_request = [&](Client& c) {
    ++c.req_seq;
    // Distinguishable per (slot, request) so decisions are traceable.
    c.value = 1'000'000 + static_cast<std::int64_t>(c.slot) * 100'000 +
              static_cast<std::int64_t>(c.req_seq % 100'000);
    c.attempts = 0;
    c.target = static_cast<ProcessId>(c.slot % cfg.n);
    c.outstanding = true;
    c.first_submit_at = steady_ms();
    ++res.submitted;
    send_current(c);
  };

  const Time start = wall.now_ms();
  res.ok = true;
  for (std::uint32_t i = 0; i < clients.size(); ++i) {
    Client& c = clients[i];
    c.slot = cfg.first_slot + static_cast<int>(i);
    if (!make_link(c, i)) {
      res.ok = false;  // port collision: report, keep the rest running
      continue;
    }
    if (cfg.churn_lifetime_ms > 0) {
      // Stagger first teardowns across the tier so churn is a steady
      // trickle, not a synchronized wave.
      c.churn_at = start + cfg.churn_lifetime_ms +
                   (static_cast<Time>(c.slot) * cfg.churn_lifetime_ms) /
                       static_cast<Time>(cfg.total_slots);
    }
    start_request(c);
  }

  const auto drain = [&](std::uint32_t idx) {
    Client& c = clients[idx];
    if (c.link == nullptr) return;
    c.link->poll([&](ProcessId from, const std::uint8_t* data,
                     std::size_t len) {
      (void)from;
      Reply rp;
      if (!decode_reply(data, len, &rp)) return;
      if (!c.outstanding || rp.req_seq != c.req_seq) return;
      if (res.latencies_ms.size() < kMaxLatencies) {
        res.latencies_ms.push_back(steady_ms() - c.first_submit_at);
      }
      ++res.replies;
      c.outstanding = false;
      start_request(c);  // closed loop: the next request rides at once
    });
  };

  epoll_event evs[64];
  for (;;) {
    const Time now = wall.now_ms();
    if (now - start >= cfg.run_for_ms) break;
    const int ready = epoll_wait(ep, evs, 64, 1);
    for (int i = 0; i < ready; ++i) drain(evs[i].data.u32);
    const double now_ms = steady_ms();
    for (std::uint32_t i = 0; i < clients.size(); ++i) {
      Client& c = clients[i];
      if (c.link == nullptr) {
        if (make_link(c, i)) send_current(c);  // rebind after a failure
        continue;
      }
      c.link->maintain();
      if (cfg.churn_lifetime_ms > 0 && now >= c.churn_at) {
        // Churn: drop the endpoint, come back as a new incarnation.
        // req_seq stays monotone, so the server's per-slot dedup holds
        // across the client's lives.
        c.link.reset();  // closes the fd; epoll deregisters with it
        ++c.life;
        ++res.churns;
        c.churn_at = now + cfg.churn_lifetime_ms;
        if (!make_link(c, i)) continue;
        if (c.outstanding) {
          send_current(c);  // the reply may have died with the old link
        }
        continue;
      }
      if (c.outstanding &&
          now_ms - c.last_submit_at >=
              static_cast<double>(cfg.resubmit_ms)) {
        // The target may have been killed with our batch queued: same
        // req_seq, next server. Duplicate folds are deduped server-side
        // per (slot, req_seq) and answered from cache.
        ++c.attempts;
        ++res.resubmits;
        c.target = static_cast<ProcessId>((c.slot + c.attempts) % cfg.n);
        send_current(c);
      }
    }
  }

  for (const Client& c : clients) {
    if (c.outstanding) ++res.outstanding;
  }
  res.elapsed_ms = wall.now_ms() - start;
  close(ep);
  return res;
}

double latency_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const auto idx = static_cast<std::size_t>(
      std::max(0.0, rank - 1.0));
  return values[std::min(idx, values.size() - 1)];
}

std::string client_result_json(const ClientTierConfig& cfg,
                               const ClientRunResult& res) {
  sweep::JsonWriter w;
  w.begin_object();
  w.key("ok").value(res.ok);
  w.key("clients").value(cfg.clients);
  w.key("first_slot").value(cfg.first_slot);
  w.key("submitted").value(res.submitted);
  w.key("replies").value(res.replies);
  w.key("resubmits").value(res.resubmits);
  w.key("churns").value(res.churns);
  w.key("outstanding").value(res.outstanding);
  w.key("elapsed_ms").value(static_cast<std::int64_t>(res.elapsed_ms));
  const double secs =
      res.elapsed_ms > 0 ? static_cast<double>(res.elapsed_ms) / 1e3 : 1.0;
  w.key("replies_per_sec").value(static_cast<double>(res.replies) / secs);
  w.key("latency_p50_ms").value(latency_percentile(res.latencies_ms, 50));
  w.key("latency_p90_ms").value(latency_percentile(res.latencies_ms, 90));
  w.key("latency_p99_ms").value(latency_percentile(res.latencies_ms, 99));
  w.key("latency_max_ms")
      .value(res.latencies_ms.empty()
                 ? 0.0
                 : *std::max_element(res.latencies_ms.begin(),
                                     res.latencies_ms.end()));
  w.end_object();
  return w.str();
}

}  // namespace saf::svc
