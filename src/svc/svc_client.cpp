// svc_client: drive a tier of closed-loop decision-service clients
// against a running `rt_cluster --protocol svc` cluster.
//
//   svc_client --n 5 --clients 100 --run-for-ms 10000 --churn-ms 2000
//
// Each client submits one value at a time to server link ids (slot %
// n), waits for the decided-value Reply, records submit->decide
// latency, and immediately submits again; --churn-ms cycles client
// links through teardown/rebirth with bumped incarnations. Prints an
// aggregate JSON (throughput + latency percentiles). Exit status: 0
// every client link bound, 1 otherwise, 2 usage error.
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/client.h"
#include "sweep/bench_json.h"

namespace {

using saf::svc::ClientTierConfig;

void print_usage(std::ostream& os) {
  os << "usage: svc_client [--n N] [--base-port P] [--clients C]\n"
        "                  [--first-slot S] [--total-slots T]\n"
        "                  [--run-for-ms MS] [--resubmit-ms MS]\n"
        "                  [--churn-ms MS] [--seed S] [--out FILE]\n"
        "                  [--help]\n"
        "\n"
        "Drives C closed-loop clients (link ids n+first-slot ..) against\n"
        "the svc servers on base-port. --total-slots must match the\n"
        "servers' --svc-client-slots; --churn-ms 0 disables churn.\n";
}

int usage(const std::string& err = "") {
  if (!err.empty()) std::cerr << "svc_client: " << err << "\n";
  print_usage(std::cerr);
  return 2;
}

template <typename Int>
bool parse_int(const char* flag, const char* v, long long lo, Int* out) {
  errno = 0;
  char* end = nullptr;
  const long long raw = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || raw < lo) {
    std::cerr << "svc_client: " << flag << " expects an integer >= " << lo
              << "\n";
    return false;
  }
  *out = static_cast<Int>(raw);
  return true;
}

bool parse_args(int argc, char** argv, ClientTierConfig* cfg,
                std::string* out_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "svc_client: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--n") {
      if ((v = value("--n")) == nullptr || !parse_int("--n", v, 1, &cfg->n))
        return false;
    } else if (arg == "--base-port") {
      if ((v = value("--base-port")) == nullptr ||
          !parse_int("--base-port", v, 1024, &cfg->base_port)) {
        return false;
      }
    } else if (arg == "--clients") {
      if ((v = value("--clients")) == nullptr ||
          !parse_int("--clients", v, 1, &cfg->clients)) {
        return false;
      }
    } else if (arg == "--first-slot") {
      if ((v = value("--first-slot")) == nullptr ||
          !parse_int("--first-slot", v, 0, &cfg->first_slot)) {
        return false;
      }
    } else if (arg == "--total-slots") {
      if ((v = value("--total-slots")) == nullptr ||
          !parse_int("--total-slots", v, 1, &cfg->total_slots)) {
        return false;
      }
    } else if (arg == "--run-for-ms") {
      if ((v = value("--run-for-ms")) == nullptr ||
          !parse_int("--run-for-ms", v, 1, &cfg->run_for_ms)) {
        return false;
      }
    } else if (arg == "--resubmit-ms") {
      if ((v = value("--resubmit-ms")) == nullptr ||
          !parse_int("--resubmit-ms", v, 1, &cfg->resubmit_ms)) {
        return false;
      }
    } else if (arg == "--churn-ms") {
      if ((v = value("--churn-ms")) == nullptr ||
          !parse_int("--churn-ms", v, 0, &cfg->churn_lifetime_ms)) {
        return false;
      }
    } else if (arg == "--seed") {
      if ((v = value("--seed")) == nullptr ||
          !parse_int("--seed", v, 0, &cfg->seed)) {
        return false;
      }
    } else if (arg == "--out") {
      if ((v = value("--out")) == nullptr) return false;
      *out_path = v;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "svc_client: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ClientTierConfig cfg;
  std::string out_path;
  if (!parse_args(argc, argv, &cfg, &out_path)) return usage();
  if (cfg.first_slot + cfg.clients > cfg.total_slots) {
    return usage("--first-slot + --clients must be <= --total-slots");
  }

  const saf::svc::ClientRunResult res = saf::svc::run_client_tier(cfg);
  const std::string json = saf::svc::client_result_json(cfg, res);
  if (out_path.empty()) {
    std::cout << json << "\n";
  } else {
    saf::sweep::write_file_atomic(out_path, json);
  }
  if (!res.ok) {
    std::cerr << "svc_client: some client links failed to bind\n";
    return 1;
  }
  return 0;
}
